"""Array allocation for program execution: shape inference and random init.

Programs carry affine access functions but no array declarations (just like
the polyhedral IR pet produces).  For execution the harness infers each
array's extent per dimension as ``1 + max`` of every access expression over
its statement's domain, with parameters fixed to concrete values — an upper
bound that is exact for the dense kernels in this repository.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.frontend.ir import Program
from repro.polyhedra import AffExpr, Constraint

__all__ = ["infer_shapes", "allocate_arrays", "random_arrays"]


def infer_shapes(program: Program, params: Mapping[str, int]) -> dict[str, tuple[int, ...]]:
    """Per-array shapes covering every access at the given parameter values."""
    extents: dict[str, list[int]] = {}
    for stmt in program.statements:
        domain = stmt.domain.copy()
        space = stmt.space
        for p, v in params.items():
            if p in space.params:
                domain.add(
                    Constraint(
                        AffExpr.var(space, p) - AffExpr.const(space, int(v)),
                        equality=True,
                    )
                )
        for acc in stmt.reads + stmt.writes:
            dom = domain
            if acc.guard is not None:
                dom = domain.intersect(acc.guard)
            if dom.is_empty():
                continue
            dims = extents.setdefault(acc.array, [])
            while len(dims) < acc.arity:
                dims.append(1)
            for k, expr in enumerate(acc.map.exprs):
                mx = dom.max_of(expr)
                if mx is None:
                    continue
                dims[k] = max(dims[k], int(mx) + 1)
    return {name: tuple(dims) for name, dims in extents.items()}


def allocate_arrays(
    program: Program, params: Mapping[str, int], fill: float = 0.0
) -> dict[str, np.ndarray]:
    """Zero- (or constant-) filled arrays for every array in the program."""
    shapes = infer_shapes(program, params)
    return {
        name: np.full(shape, fill, dtype=np.float64)
        for name, shape in shapes.items()
    }


def random_arrays(
    program: Program, params: Mapping[str, int], seed: int = 0
) -> dict[str, np.ndarray]:
    """Deterministic random-filled arrays (validation inputs)."""
    rng = np.random.default_rng(seed)
    shapes = infer_shapes(program, params)
    return {
        name: rng.random(shape) if shape else np.asarray(rng.random())
        for name, shape in shapes.items()
    }
