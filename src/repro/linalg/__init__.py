"""Exact rational linear algebra used by the polyhedral scheduler."""

from repro.linalg.fraction_matrix import (
    FMatrix,
    integer_normalize_row,
    lcm,
    orthogonal_complement,
)

__all__ = ["FMatrix", "integer_normalize_row", "lcm", "orthogonal_complement"]
