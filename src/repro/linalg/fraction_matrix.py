"""Exact rational dense linear algebra over :class:`fractions.Fraction`.

The scheduler (:mod:`repro.core`) needs *exact* arithmetic: the orthogonal
sub-space of previously found hyperplanes (``H_perp`` in the paper, Section
3.4) must be an exact integer basis, and a floating-point nullspace would
introduce spurious coefficients that corrupt the radix-encoded linear
independence constraints.  Matrices here are small (statement dimensionality,
at most a dozen rows/columns), so a straightforward pure-Python implementation
is both adequate and dependable.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

__all__ = [
    "FMatrix",
    "integer_normalize_row",
    "lcm",
    "orthogonal_complement",
]


def lcm(a: int, b: int) -> int:
    """Least common multiple of two non-negative integers (``lcm(0, x) == x``)."""
    if a == 0:
        return abs(b)
    if b == 0:
        return abs(a)
    return abs(a * b) // gcd(a, b)


def integer_normalize_row(row: Sequence[Fraction | int]) -> list[int]:
    """Scale a rational row to the smallest integer row with the same direction.

    Multiplies by the LCM of the denominators and divides by the GCD of the
    resulting integers.  The sign of the row is preserved.  A zero row maps to
    a zero row.
    """
    fracs = [Fraction(x) for x in row]
    denom_lcm = 1
    for f in fracs:
        denom_lcm = lcm(denom_lcm, f.denominator)
    ints = [int(f * denom_lcm) for f in fracs]
    g = 0
    for v in ints:
        g = gcd(g, abs(v))
    if g > 1:
        ints = [v // g for v in ints]
    return ints


class FMatrix:
    """A dense matrix of :class:`fractions.Fraction` entries.

    Supports the handful of exact operations the scheduler needs: RREF, rank,
    nullspace, inverse, products, and integer row normalization.  Instances
    are immutable from the caller's perspective; all operations return new
    matrices.
    """

    __slots__ = ("rows", "nrows", "ncols")

    def __init__(self, rows: Iterable[Iterable[Fraction | int]]):
        self.rows: list[list[Fraction]] = [
            [Fraction(x) for x in row] for row in rows
        ]
        self.nrows = len(self.rows)
        self.ncols = len(self.rows[0]) if self.rows else 0
        for row in self.rows:
            if len(row) != self.ncols:
                raise ValueError("ragged rows in FMatrix")

    # -- constructors -----------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "FMatrix":
        return cls([[Fraction(int(i == j)) for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "FMatrix":
        return cls([[Fraction(0)] * ncols for _ in range(nrows)])

    # -- basic accessors ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def __getitem__(self, ij: tuple[int, int]) -> Fraction:
        i, j = ij
        return self.rows[i][j]

    def row(self, i: int) -> list[Fraction]:
        return list(self.rows[i])

    def col(self, j: int) -> list[Fraction]:
        return [r[j] for r in self.rows]

    def tolist(self) -> list[list[Fraction]]:
        return [list(r) for r in self.rows]

    def to_int_rows(self) -> list[list[int]]:
        """Each row scaled to its smallest integer representative."""
        return [integer_normalize_row(r) for r in self.rows]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FMatrix) and self.rows == other.rows

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key in hot paths
        return hash(tuple(tuple(r) for r in self.rows))

    def __repr__(self) -> str:
        body = "; ".join(
            " ".join(str(x) for x in row) for row in self.rows
        )
        return f"FMatrix[{self.nrows}x{self.ncols}]({body})"

    # -- algebra -----------------------------------------------------------

    def transpose(self) -> "FMatrix":
        return FMatrix(
            [[self.rows[i][j] for i in range(self.nrows)] for j in range(self.ncols)]
        )

    def matmul(self, other: "FMatrix") -> "FMatrix":
        if self.ncols != other.nrows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        ot = other.transpose()
        return FMatrix(
            [
                [
                    sum((a * b for a, b in zip(row, ocol)), Fraction(0))
                    for ocol in ot.rows
                ]
                for row in self.rows
            ]
        )

    def __matmul__(self, other: "FMatrix") -> "FMatrix":
        return self.matmul(other)

    def matvec(self, vec: Sequence[Fraction | int]) -> list[Fraction]:
        v = [Fraction(x) for x in vec]
        if len(v) != self.ncols:
            raise ValueError("vector length mismatch")
        return [sum((a * b for a, b in zip(row, v)), Fraction(0)) for row in self.rows]

    # -- elimination -------------------------------------------------------

    def rref(self) -> tuple["FMatrix", list[int]]:
        """Reduced row echelon form.

        Returns the RREF matrix and the list of pivot column indices.
        """
        m = [list(r) for r in self.rows]
        pivots: list[int] = []
        r = 0
        for c in range(self.ncols):
            if r >= self.nrows:
                break
            pivot = None
            for i in range(r, self.nrows):
                if m[i][c] != 0:
                    pivot = i
                    break
            if pivot is None:
                continue
            m[r], m[pivot] = m[pivot], m[r]
            pv = m[r][c]
            m[r] = [x / pv for x in m[r]]
            for i in range(self.nrows):
                if i != r and m[i][c] != 0:
                    f = m[i][c]
                    m[i] = [a - f * b for a, b in zip(m[i], m[r])]
            pivots.append(c)
            r += 1
        return FMatrix(m), pivots

    def rank(self) -> int:
        _, pivots = self.rref()
        return len(pivots)

    def nullspace(self) -> "FMatrix":
        """A basis for the (right) nullspace, one basis vector per row.

        Returns a matrix with ``ncols - rank`` rows; the empty matrix
        (0 rows, ``ncols`` columns) when the matrix has full column rank.
        """
        rref, pivots = self.rref()
        free = [c for c in range(self.ncols) if c not in pivots]
        basis: list[list[Fraction]] = []
        for fc in free:
            vec = [Fraction(0)] * self.ncols
            vec[fc] = Fraction(1)
            for r_idx, pc in enumerate(pivots):
                vec[pc] = -rref.rows[r_idx][fc]
            basis.append(vec)
        if not basis:
            return FMatrix.zeros(0, self.ncols)
        return FMatrix(basis)

    def inverse(self) -> "FMatrix":
        if self.nrows != self.ncols:
            raise ValueError("inverse of a non-square matrix")
        n = self.nrows
        aug = FMatrix(
            [
                list(self.rows[i]) + [Fraction(int(i == j)) for j in range(n)]
                for i in range(n)
            ]
        )
        rref, pivots = aug.rref()
        if pivots[:n] != list(range(n)):
            raise ValueError("matrix is singular")
        return FMatrix([row[n:] for row in rref.rows])

    def solve(self, rhs: Sequence[Fraction | int]) -> list[Fraction]:
        """Solve ``A x = rhs`` for square non-singular ``A``."""
        inv = self.inverse()
        return inv.matvec(rhs)


def orthogonal_complement(h_rows: Sequence[Sequence[int]], ncols: int) -> list[list[int]]:
    """Integer basis of the sub-space orthogonal to the row space of ``H``.

    This is ``H_perp`` from Section 3.4 of the paper: every returned row ``r``
    satisfies ``r . h == 0`` for every row ``h`` of ``H``.  Rows are reduced to
    their smallest integer representatives.  When ``H`` is empty, the identity
    basis is returned (the whole space is orthogonal to nothing).
    """
    if not h_rows:
        return [[int(i == j) for j in range(ncols)] for i in range(ncols)]
    mat = FMatrix(h_rows)
    if mat.ncols != ncols:
        raise ValueError("H row length does not match ncols")
    null = mat.nullspace()
    return [integer_normalize_row(r) for r in null.rows]
