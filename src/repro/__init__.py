"""pluto-plus-repro: a from-scratch reproduction of

    PLUTO+: Near-Complete Modeling of Affine Transformations for
    Parallelism and Locality.  Acharya & Bondhugula, PPoPP 2015.

The supported public surface is :mod:`repro.api`, re-exported here::

    from repro import optimize, verify, PipelineOptions

    result = optimize("heat-1dp", PipelineOptions(algorithm="plutoplus"))
    print(result.schedule.pretty())
    assert verify(result).legal
    result.code.run(arrays, params)

Results are picklable and JSON round-trippable
(``OptimizationResult.from_json(result.to_json()) == result``), so they
cross process boundaries — the basis of the ``repro suite`` parallel
runner (:mod:`repro.suite`).

Everything else — :mod:`repro.polyhedra` (integer sets), :mod:`repro.ilp`
(lexmin ILP), :mod:`repro.frontend` (IR/builder/parser), :mod:`repro.deps`
(dependence analysis), :mod:`repro.core` (the Pluto/Pluto+ schedulers, ISS,
diamond tiling), :mod:`repro.codegen`, :mod:`repro.runtime`,
:mod:`repro.machine`, :mod:`repro.workloads`, :mod:`repro.apps` — is
internal; deep imports keep working but carry no stability promise
(``docs/API.md``).
"""

from importlib import metadata as _metadata

from repro.api import (
    ExecStats,
    ExecutionOptions,
    OptimizationResult,
    PipelineOptions,
    TimingBreakdown,
    VerificationReport,
    analyze_dependences,
    list_workloads,
    optimize,
    verify,
)
from repro.frontend import ProgramBuilder, parse_program

try:
    # Installed builds answer from package metadata, so `repro --version`,
    # the daemon's response header, and `pip show repro` can never disagree.
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # running from a source checkout
    __version__ = "1.6.0"

__all__ = [
    "ExecStats",
    "ExecutionOptions",
    "OptimizationResult",
    "PipelineOptions",
    "ProgramBuilder",
    "TimingBreakdown",
    "VerificationReport",
    "__version__",
    "analyze_dependences",
    "list_workloads",
    "optimize",
    "parse_program",
    "verify",
]
