"""pluto-plus-repro: a from-scratch reproduction of

    PLUTO+: Near-Complete Modeling of Affine Transformations for
    Parallelism and Locality.  Acharya & Bondhugula, PPoPP 2015.

Top-level convenience API::

    from repro import optimize, parse_program, PipelineOptions

    program = parse_program(source, "name", params=("N",))
    result = optimize(program, PipelineOptions(algorithm="plutoplus"))
    print(result.schedule.pretty())
    result.code.run(arrays, params)

Sub-packages: :mod:`repro.polyhedra` (integer sets), :mod:`repro.ilp`
(lexmin ILP), :mod:`repro.frontend` (IR/builder/parser), :mod:`repro.deps`
(dependence analysis), :mod:`repro.core` (the Pluto/Pluto+ schedulers, ISS,
diamond tiling), :mod:`repro.codegen`, :mod:`repro.runtime`,
:mod:`repro.machine`, :mod:`repro.workloads`, :mod:`repro.apps`.
"""

from repro.frontend import ProgramBuilder, parse_program
from repro.pipeline import OptimizationResult, PipelineOptions, optimize

__version__ = "1.0.0"

__all__ = [
    "OptimizationResult",
    "PipelineOptions",
    "ProgramBuilder",
    "__version__",
    "optimize",
    "parse_program",
]
