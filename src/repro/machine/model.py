"""Machine description (Table 1): 2-way SMP Intel Xeon E5-2680.

The paper's testbed is modeled as a roofline-style analytic machine: per-core
compute throughput, a per-socket memory-bandwidth saturation curve, cache
capacities for tile working-set checks, and synchronization costs.  The
sustained-bandwidth and single-core-bandwidth constants are set to typical
measured values for this platform (STREAM-like), not theoretical peaks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "XEON_E5_2680"]


@dataclass(frozen=True)
class MachineModel:
    name: str
    clock_ghz: float
    cores_per_socket: int
    sockets: int
    flops_per_cycle: float            # DP flops per cycle per core (SIMD)
    l1_kb: int
    l2_kb: int                        # per core
    l3_mb: int                        # per socket
    peak_gflops: float                # Table 1 headline
    single_core_bw_gbs: float         # sustained, one core
    socket_bw_gbs: float              # sustained, saturated socket
    barrier_latency_us: float = 8.0   # OpenMP barrier at 16 threads

    @property
    def total_cores(self) -> int:
        return self.cores_per_socket * self.sockets

    def core_peak_gflops(self) -> float:
        return self.clock_ghz * self.flops_per_cycle

    def compute_gflops(self, cores: int, vector_efficiency: float = 1.0) -> float:
        cores = min(cores, self.total_cores)
        return cores * self.core_peak_gflops() * vector_efficiency

    def bandwidth_gbs(self, cores: int, scatter: bool = True) -> float:
        """Sustained aggregate bandwidth for ``cores`` active cores.

        The default KMP affinity in the paper is ``scatter``: threads spread
        across both sockets, so even low thread counts draw on both memory
        controllers; each socket's bandwidth saturates with the number of
        cores resident on it.
        """
        cores = min(cores, self.total_cores)
        if cores <= 0:
            return 0.0
        if scatter:
            per_socket = [cores - cores // 2, cores // 2]
        else:
            first = min(cores, self.cores_per_socket)
            per_socket = [first, cores - first]
        total = 0.0
        for n in per_socket:
            if n > 0:
                total += min(n * self.single_core_bw_gbs, self.socket_bw_gbs)
        return total

    def cache_per_core_bytes(self) -> int:
        """Effective per-core capacity for tile working sets (L2 + L3 share)."""
        return self.l2_kb * 1024 + (self.l3_mb * 1024 * 1024) // self.cores_per_socket


#: Table 1 of the paper.
XEON_E5_2680 = MachineModel(
    name="2x Intel Xeon E5-2680 (Sandy Bridge)",
    clock_ghz=2.7,
    cores_per_socket=8,
    sockets=2,
    flops_per_cycle=4.0,              # 172.8 GF / 16 cores / 2.7 GHz
    l1_kb=32,
    l2_kb=512,
    l3_mb=20,
    peak_gflops=172.8,
    single_core_bw_gbs=14.0,
    socket_bw_gbs=32.0,
)
