"""Analytic machine and performance model (Table 1 / Fig. 6 substitute)."""

from repro.machine.cache import CacheConfig, CacheSim, simulate_schedule_misses
from repro.machine.model import MachineModel, XEON_E5_2680
from repro.machine.perf import (
    ExecutionMode,
    PerfEstimate,
    classify_result,
    estimate,
    speedup,
)

__all__ = [
    "CacheConfig",
    "CacheSim",
    "ExecutionMode",
    "MachineModel",
    "PerfEstimate",
    "XEON_E5_2680",
    "classify_result",
    "estimate",
    "simulate_schedule_misses",
    "speedup",
]
