"""Analytic machine and performance model (Table 1 / Fig. 6 substitute)."""

from repro.machine.cache import CacheConfig, CacheSim, simulate_schedule_misses
from repro.machine.model import MachineModel, XEON_E5_2680
from repro.machine.perf import (
    ExecutionMode,
    PerfEstimate,
    RooflineComparison,
    classify_result,
    compare_roofline,
    estimate,
    speedup,
)

__all__ = [
    "CacheConfig",
    "CacheSim",
    "ExecutionMode",
    "MachineModel",
    "PerfEstimate",
    "RooflineComparison",
    "XEON_E5_2680",
    "classify_result",
    "compare_roofline",
    "estimate",
    "simulate_schedule_misses",
    "speedup",
]
