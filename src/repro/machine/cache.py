"""A small set-associative cache simulator, driven by real execution traces.

The Fig. 6 performance model rests on one mechanism: time tiling divides a
sweep's main-memory traffic by the tile's time-height because the tile
working set stays cache-resident.  This module lets the repository *check*
that mechanism instead of asserting it: the code generator's trace mode
yields the exact statement instances executed, the statements' access maps
turn each instance into the array cells it touches, and the simulator counts
misses under an LRU set-associative cache.  The cache-behavior tests and the
A5 ablation bench compare untiled vs tiled schedules of the same program at
equal work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.codegen.python_emit import generate_python
from repro.core.tiling import TiledSchedule
from repro.frontend.ir import Program
from repro.runtime.arrays import infer_shapes, random_arrays

__all__ = ["CacheConfig", "CacheSim", "simulate_schedule_misses"]


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    associativity: int = 8
    element_bytes: int = 8

    @property
    def num_sets(self) -> int:
        lines = self.size_bytes // self.line_bytes
        return max(lines // self.associativity, 1)


class CacheSim:
    """LRU set-associative cache over a flat byte address space."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # per set: list of tags, most-recently-used last
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.config.line_bytes
        set_idx = line % self.config.num_sets
        tag = line // self.config.num_sets
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def _array_layout(program: Program, params: Mapping[str, int]):
    """Flat base offsets and row-major strides for every array."""
    shapes = infer_shapes(program, params)
    base: dict[str, int] = {}
    strides: dict[str, tuple[int, ...]] = {}
    offset = 0
    for name in sorted(shapes):
        shape = shapes[name]
        size = 1
        st = []
        for extent in reversed(shape):
            st.append(size)
            size *= extent
        strides[name] = tuple(reversed(st))
        base[name] = offset
        offset += max(size, 1)
    return base, strides


def simulate_schedule_misses(
    program: Program,
    tsched: TiledSchedule,
    params: Mapping[str, int],
    cache: Optional[CacheConfig] = None,
) -> CacheSim:
    """Execute ``tsched`` (trace mode) and replay its memory accesses.

    Every read access of each executed statement instance is fed to the
    cache first, then every write (write-allocate).  Guarded accesses fire
    only where their guard holds, mirroring the real code.
    """
    config = cache or CacheConfig()
    sim = CacheSim(config)
    base, strides = _array_layout(program, params)
    stmts = {s.name: s for s in program.statements}

    code = generate_python(tsched, trace=True)
    arrays = random_arrays(program, params, seed=0)
    trace: list = []
    code.run(arrays, dict(params), trace)

    eb = config.element_bytes
    for name, point in trace:
        stmt = stmts[name]
        values = dict(zip(stmt.space.dims, point))
        values.update(params)
        for acc in list(stmt.reads) + list(stmt.writes):
            if acc.guard is not None and not acc.guard.contains(values):
                continue
            idx = acc.map.apply(values)
            addr = base[acc.array]
            for k, stride in zip(idx, strides[acc.array]):
                addr += k * stride
            sim.access(addr * eb)
    return sim
