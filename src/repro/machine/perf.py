"""Analytic performance estimation for Fig. 6.

The paper's execution-time study compares three variants per benchmark:

* ``icc-omp-vec`` — original code, outer space loop parallel, innermost loop
  vectorized;
* ``pluto``       — for the periodic suite, identical to icc-omp-vec (no
  time tiling possible, Section 4.2);
* ``pluto+``      — diamond time-tiled with concurrent start.

This module reproduces the comparison's *shape* with a roofline model over
the Table 1 machine: an untiled sweep streams the whole grid through memory
every time step; a time-tiled sweep reuses each tile's working set for ~one
tile-height of time steps, cutting traffic by that factor and turning the
bandwidth-bound baseline compute-bound.  Parallel scaling follows the
variant's parallelism structure (space-parallel, pipelined wavefront, or
concurrent start), and the NUMA sensitivity the paper observed for
lbm-ldc-d3q27 under scatter affinity is modeled as a bandwidth penalty for
untiled runs past one socket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.machine.model import MachineModel, XEON_E5_2680
from repro.workloads.base import PerfSpec, Workload

__all__ = [
    "PerfEstimate",
    "ExecutionMode",
    "RooflineComparison",
    "classify_result",
    "compare_roofline",
    "estimate",
    "speedup",
]

#: extra work/misses introduced by skewed tile boundaries
_TILING_COMPUTE_OVERHEAD = 1.15
#: fraction of ideal pipeline throughput a wavefront schedule achieves
_WAVEFRONT_EFFICIENCY = 0.7


class ExecutionMode:
    SPACE_PARALLEL = "space-parallel"   # untiled, outer space loop parallel
    WAVEFRONT = "wavefront-tiled"       # time-tiled band, pipelined start
    DIAMOND = "diamond-tiled"           # time-tiled band, concurrent start
    SEQUENTIAL = "sequential"


@dataclass
class PerfEstimate:
    seconds: float
    gflops: float
    mlups: float
    bound: str                          # "memory" | "compute"
    mode: str
    cores: int


def classify_result(result) -> str:
    """Execution mode of an :class:`~repro.pipeline.OptimizationResult`."""
    if result.used_diamond:
        return ExecutionMode.DIAMOND
    tiled = result.tiled
    time_tiled = any(
        b.width >= 2
        and all(tiled.rows[l].kind == "tile" for l in b.levels())
        for b in tiled.bands
    )
    if time_tiled and _band_covers_time(result):
        return ExecutionMode.WAVEFRONT
    if any(r.parallel for r in tiled.rows):
        return ExecutionMode.SPACE_PARALLEL
    # An untiled sequential-outer schedule still has inner parallelism for
    # the stencil codes considered; treat explicit absence as sequential.
    return ExecutionMode.SEQUENTIAL


def _band_covers_time(result) -> bool:
    """Whether some tiled band's hyperplanes involve the outermost (time)
    iterator — i.e. the transformation actually tiles time."""
    for band in result.tiled.bands:
        for level in band.levels():
            row = result.tiled.rows[level]
            if row.kind != "tile":
                continue
            for stmt in result.program.statements:
                expr = row.expr_for(stmt)
                if stmt.space.dims and expr.coeff_of(stmt.space.dims[0]):
                    return True
    return False


def _problem_volume(spec: PerfSpec, sizes: Mapping[str, int]) -> tuple[float, float]:
    """(points per sweep, time steps)."""
    points = 1.0
    for p in spec.space_params:
        points *= sizes[p]
    steps = float(sizes[spec.time_param]) if spec.time_param else 1.0
    return points, steps


def _reuse_factor(
    spec: PerfSpec,
    machine: MachineModel,
    tile_size: int,
) -> float:
    """Time-steps of reuse a tile achieves before spilling its working set.

    A tile spans ``tile_size`` points in each space dimension; its working
    set (a couple of time planes of the tile's footprint) must fit the
    per-core cache share for the full ``tile_size`` time-height of reuse.
    """
    d_space = max(len(spec.space_params), 1)
    footprint = (tile_size ** d_space) * spec.bytes_per_point
    budget = machine.cache_per_core_bytes()
    reuse = float(tile_size)
    while footprint > budget and reuse > 1:
        reuse /= 2.0
        footprint /= 2.0
    return max(reuse, 1.0)


def estimate(
    workload: Workload,
    mode: str,
    cores: int,
    machine: MachineModel = XEON_E5_2680,
    sizes: Optional[Mapping[str, int]] = None,
    tile_size: int = 32,
) -> PerfEstimate:
    """Predict execution time for ``workload`` run as ``mode`` on ``cores``."""
    spec = workload.perf
    if spec is None:
        raise ValueError(f"workload {workload.name} has no PerfSpec")
    sizes = dict(sizes or workload.sizes)
    points, steps = _problem_volume(spec, sizes)
    total_flops = points * steps * spec.flops_per_point
    total_bytes = points * steps * spec.bytes_per_point

    numa_sensitive = "d3q27" in workload.name or len(spec.space_params) >= 3

    if mode in (ExecutionMode.SPACE_PARALLEL, ExecutionMode.SEQUENTIAL):
        eff_cores = cores if mode == ExecutionMode.SPACE_PARALLEL else 1
        compute_s = total_flops / (
            machine.compute_gflops(eff_cores, spec.vector_efficiency) * 1e9
        )
        bw = machine.bandwidth_gbs(eff_cores)
        if numa_sensitive and eff_cores > machine.cores_per_socket:
            # Scatter affinity + untiled 3-d sweeps: remote-socket traffic
            # erodes effective bandwidth past one socket (Section 4.2).
            over = eff_cores - machine.cores_per_socket
            bw *= max(1.0 - 0.06 * over, 0.55)
        memory_s = total_bytes / (bw * 1e9)
        seconds = max(compute_s, memory_s)
        bound = "compute" if compute_s >= memory_s else "memory"
    elif mode in (ExecutionMode.DIAMOND, ExecutionMode.WAVEFRONT):
        reuse = _reuse_factor(spec, machine, tile_size)
        reuse = min(reuse, steps)
        traffic = total_bytes / reuse
        par_eff = 1.0 if mode == ExecutionMode.DIAMOND else _WAVEFRONT_EFFICIENCY
        compute_s = (
            total_flops
            * _TILING_COMPUTE_OVERHEAD
            / (machine.compute_gflops(cores, spec.vector_efficiency) * par_eff * 1e9)
        )
        memory_s = traffic / (machine.bandwidth_gbs(cores) * 1e9)
        sync_s = (
            (steps / max(tile_size, 1))
            * machine.barrier_latency_us
            * 1e-6
            * math.log2(max(cores, 2))
        )
        seconds = max(compute_s, memory_s) + sync_s
        bound = "compute" if compute_s >= memory_s else "memory"
    else:
        raise ValueError(f"unknown execution mode {mode!r}")

    return PerfEstimate(
        seconds=seconds,
        gflops=total_flops / seconds / 1e9,
        mlups=points * steps / seconds / 1e6,
        bound=bound,
        mode=mode,
        cores=cores,
    )


def speedup(a: PerfEstimate, b: PerfEstimate) -> float:
    """How much faster ``b`` is than ``a``."""
    return a.seconds / b.seconds


@dataclass
class RooflineComparison:
    """Predicted-vs-measured for one executed schedule (EXPERIMENTS.md)."""

    workload: str
    mode: str                           # classify_result() verdict
    bound: str                          # "memory" | "compute" (predicted)
    cores: int
    predicted_seconds: float
    measured_seconds: float

    @property
    def ratio(self) -> float:
        """measured / predicted: > 1 means the model was optimistic."""
        return self.measured_seconds / self.predicted_seconds

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "bound": self.bound,
            "cores": self.cores,
            "predicted_seconds": self.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "ratio": round(self.ratio, 3),
        }


def compare_roofline(
    result,
    exec_seconds: float,
    cores: int = 1,
    machine: MachineModel = XEON_E5_2680,
    sizes: Optional[Mapping[str, int]] = None,
) -> RooflineComparison:
    """Feed one measured execution time back into the roofline model.

    ``result`` is an :class:`~repro.pipeline.OptimizationResult` whose
    source program is a registered workload (the name resolves the
    :class:`~repro.workloads.base.PerfSpec`); ``exec_seconds`` is the
    measured wall time for one run over ``sizes`` (defaulting to the
    workload's registered sizes).  The schedule is classified into its
    execution mode exactly as Fig. 6 does, the analytic model predicts a
    time for that mode, and the comparison — including the
    measured/predicted ratio — comes back ready for the EXPERIMENTS.md
    table.  Raises ``ValueError`` for unregistered workloads or ones
    without a :class:`PerfSpec`.
    """
    from repro.workloads import get_workload

    name = result.source_program.name
    try:
        workload = get_workload(name)
    except KeyError:
        raise ValueError(
            f"compare_roofline needs a registered workload; "
            f"{name!r} is not one"
        ) from None
    mode = classify_result(result)
    tile_size = result.options.tile_size if result.options is not None else 32
    predicted = estimate(
        workload, mode, cores, machine=machine, sizes=sizes,
        tile_size=tile_size,
    )
    return RooflineComparison(
        workload=name,
        mode=mode,
        bound=predicted.bound,
        cores=cores,
        predicted_seconds=predicted.seconds,
        measured_seconds=exec_seconds,
    )
