"""The supported public API surface.

Everything exported here — and re-exported from :mod:`repro` — is stable:
signatures and serialized shapes only change with a major version bump and
a documented migration.  Deep imports (``repro.pipeline``, ``repro.core.*``,
``repro.polyhedra.*``, ...) keep working but are internal wiring and may be
reorganized freely between versions; see ``docs/API.md``.

    from repro import api

    result = api.optimize("heat-1dp")
    report = api.verify(result)
    deps = api.analyze_dependences("heat-1dp")
    names = api.list_workloads("periodic")

Scheduling strategy is a :class:`PipelineOptions` knob: the kw-only
``scheduler`` field selects the exact per-level ILP search (``"exact"``,
the default), the quick fusion + dimension-matching heuristic
(``"quick"``), or the heuristic with exact fallback (``"auto"``)::

    result = api.optimize("gemm", api.PipelineOptions(scheduler="auto"))
    result.scheduler_stats.scheduler_path   # "quick" | "fallback" | "exact"

Execution is backend-neutral: ``result.run(arrays, params)`` dispatches on
the kw-only ``backend`` knob (``"python"``, the default and historical
behavior; ``"c"`` compiles the emitted C with the system compiler and runs
at native speed; ``"auto"`` picks the fastest available), returning an
:class:`ExecStats` describing what actually ran::

    result = api.optimize("gemm", api.PipelineOptions(backend="c"))
    stats = result.run(arrays, params)
    stats.backend            # "c", or "python" after a graceful fallback
    stats.fallback_reason    # why, when it fell back
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.verify import VerificationReport, verify_schedule
from repro.exec import ExecStats, ExecutionOptions
from repro.frontend.ir import Program
from repro.pipeline import (
    OptimizationResult,
    PipelineOptions,
    TimingBreakdown,
    optimize,
)

__all__ = [
    "ExecStats",
    "ExecutionOptions",
    "OptimizationResult",
    "PipelineOptions",
    "TimingBreakdown",
    "VerificationReport",
    "analyze_dependences",
    "list_workloads",
    "optimize",
    "verify",
]


def _resolve_program(program: Union[Program, str]) -> Program:
    if isinstance(program, str):
        from repro.workloads import get_workload

        return get_workload(program).program()
    if not isinstance(program, Program):
        raise TypeError(
            f"expected a Program or a workload name, got {type(program).__name__}"
        )
    return program


def analyze_dependences(program: Union[Program, str]):
    """Compute the dependence polyhedra of ``program``.

    ``program`` may be a :class:`Program` or a registered workload name.
    Returns the list of :class:`repro.deps.Dependence` edges.
    """
    from repro.deps import compute_dependences

    return compute_dependences(_resolve_program(program))


def verify(
    result_or_schedule,
    program: Optional[Union[Program, str]] = None,
) -> VerificationReport:
    """Independently check schedule legality against fresh dependences.

    Accepts an :class:`OptimizationResult` (verifies its schedule against
    its post-ISS program) or a bare ``Schedule``/``TiledSchedule`` plus the
    ``program`` it schedules.  The check never trusts scheduler bookkeeping:
    dependences are recomputed from the program.
    """
    from repro.deps import DependenceGraph, compute_dependences

    if isinstance(result_or_schedule, OptimizationResult):
        program_obj = result_or_schedule.program
        schedule = result_or_schedule.schedule
    else:
        if program is None:
            raise TypeError(
                "verify(schedule, program=...) requires the program when not "
                "passed an OptimizationResult"
            )
        program_obj = _resolve_program(program)
        schedule = result_or_schedule
    ddg = DependenceGraph(program_obj, compute_dependences(program_obj))
    return verify_schedule(schedule, ddg)


def list_workloads(category: Optional[str] = None) -> list[str]:
    """Names of registered workloads, optionally filtered by category
    (``"polybench"``, ``"periodic"``, ``"motivation"``)."""
    from repro.workloads import all_workloads

    return [w.name for w in all_workloads(category)]
