"""Shared worker-process supervision: spawn, report, deadline kill.

Two subsystems run jobs as one short-lived process per request — the
parallel suite engine (:mod:`repro.suite.runner`) and the serving daemon's
pool (:mod:`repro.server.pool`).  Both need the same machinery: fork a
child that reports exactly one ``("ok" | "error", payload)`` message over a
pipe, wait on many children at once, kill the ones that outlive their
deadline, and classify a silent death as a *crash* rather than a result.
That machinery lives here so the two callers cannot drift apart; policy —
retries, manifests, caches, admission control — stays with the caller.

Child contract (:func:`worker_main`): the spawn target runs
``fn(payload)`` and sends ``("ok", result)``; any raise is caught and sent
as ``("error", traceback_text)``; a child that dies without sending (signal,
``os._exit``, broken pipe) surfaces as a ``crash`` event.  ``fn`` must be a
module-level callable so the spawn start method keeps working where fork is
unavailable.

Parent contract (:class:`WorkerSupervisor`): :meth:`~WorkerSupervisor.spawn`
starts one child per job, :meth:`~WorkerSupervisor.poll` performs one
``multiprocessing.connection.wait`` round and returns settled
:class:`WorkerEvent` records (``ok``/``error``/``crash``/``timeout``).
``poll`` also accepts extra connections to wait on — the daemon pool's
wake pipe — so a dispatcher thread can block on worker completions and new
submissions in one call.
"""

from __future__ import annotations

import math
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as conn_wait
from typing import Callable, Optional, Sequence

__all__ = [
    "WorkerEvent",
    "WorkerHandle",
    "WorkerSupervisor",
    "kill_process",
    "mp_context",
    "warm_worker_main",
    "worker_main",
]


def mp_context():
    """Fork where available (Linux): the child inherits the loaded workload
    registry and warm polyhedral caches, which is both faster than a cold
    import and what lets tests inject hostile workloads."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def kill_process(proc) -> None:
    """Terminate, escalating to SIGKILL if the child ignores SIGTERM."""
    proc.terminate()
    proc.join(2.0)
    if proc.is_alive():
        proc.kill()
        proc.join()


def worker_main(fn: Callable, payload, conn) -> None:
    """Child process body: run ``fn(payload)``, report exactly one message."""
    try:
        result = fn(payload)
        conn.send(("ok", result))
    except BaseException:
        # A raising job is a structured outcome, not a crash.
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass  # parent gone or pipe broken: dying reads as a crash
    finally:
        conn.close()


def warm_worker_main(fn, conn) -> None:
    """Persistent child body: serve jobs off the pipe until retired.

    The parent sends ``(seq, payload)`` tuples and reads back
    ``(seq, "ok" | "error", result)`` — the sequence number lets it match
    replies to dispatches.  A ``None`` message is the retirement sentinel;
    pipe EOF (parent died) retires the worker too.  As with
    :func:`worker_main`, a raising job is a structured ``error`` outcome
    and only a silent death (signal, ``os._exit``) reads as a crash.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        seq, payload = msg
        try:
            reply = (seq, "ok", fn(payload))
        except BaseException:
            reply = (seq, "error", traceback.format_exc())
        try:
            conn.send(reply)
        except Exception:
            break  # parent gone or pipe broken: dying reads as a crash
    try:
        conn.close()
    except Exception:
        pass


@dataclass
class WorkerHandle:
    """One live child: its identity token plus process bookkeeping."""

    key: object
    proc: object
    conn: object
    started: float
    timeout: Optional[float]

    def deadline(self) -> float:
        return math.inf if self.timeout is None else self.started + self.timeout


@dataclass
class WorkerEvent:
    """A settled worker, classified.

    ``kind`` is ``ok`` (child reported a result, in ``payload``), ``error``
    (child reported a traceback), ``crash`` (child died without reporting),
    or ``timeout`` (parent killed it past its deadline).  ``elapsed`` is
    the wall time of this attempt only.
    """

    key: object
    kind: str
    payload: object
    elapsed: float
    pid: Optional[int] = None


class WorkerSupervisor:
    """Owns the live worker processes for one event loop.

    Single-threaded by design: one thread spawns and polls.  Callers layer
    their own policy (slot limits, retries, queues) on top.
    """

    def __init__(self, fn: Callable, ctx=None):
        self.fn = fn
        self.ctx = ctx or mp_context()
        self._live: dict[object, WorkerHandle] = {}  # read-conn -> handle

    @property
    def live_count(self) -> int:
        return len(self._live)

    def live_handles(self) -> list[WorkerHandle]:
        return list(self._live.values())

    def spawn(
        self,
        key,
        payload,
        *,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
    ) -> WorkerHandle:
        """Start one child running ``fn(payload)``; never blocks."""
        parent_conn, child_conn = self.ctx.Pipe(duplex=False)
        proc = self.ctx.Process(
            target=worker_main,
            args=(self.fn, payload, child_conn),
            name=name or "repro-worker",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        handle = WorkerHandle(key, proc, parent_conn, time.perf_counter(), timeout)
        self._live[parent_conn] = handle
        return handle

    def poll(
        self, extra: Sequence = (), timeout: Optional[float] = None
    ) -> tuple[list[WorkerEvent], list]:
        """One wait round: reap reporters, kill the overdue, return events.

        Blocks until a worker settles, an ``extra`` connection becomes
        readable, the earliest worker deadline passes, or ``timeout``
        elapses — whichever is first.  Returns ``(events, ready_extras)``.
        """
        if not self._live and not extra:
            return [], []

        deadlines = [
            h.deadline() for h in self._live.values() if h.timeout is not None
        ]
        wait_for = timeout
        if deadlines:
            until_deadline = max(0.0, min(deadlines) - time.perf_counter()) + 0.01
            wait_for = (
                until_deadline if wait_for is None else min(wait_for, until_deadline)
            )

        ready = conn_wait(list(self._live) + list(extra), timeout=wait_for)
        extra_set = set(extra)
        ready_extras = [c for c in ready if c in extra_set]

        events: list[WorkerEvent] = []
        for conn in ready:
            if conn in extra_set:
                continue
            handle = self._live.pop(conn)
            elapsed = time.perf_counter() - handle.started
            pid = handle.proc.pid
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                handle.proc.join()
                code = handle.proc.exitcode
                events.append(WorkerEvent(
                    handle.key, "crash",
                    f"worker died without reporting (exit code {code})",
                    elapsed, pid,
                ))
            else:
                handle.proc.join()
                events.append(WorkerEvent(handle.key, status, payload, elapsed, pid))
            finally:
                conn.close()

        now = time.perf_counter()
        overdue = [h for h in self._live.values() if now >= h.deadline()]
        for handle in overdue:
            del self._live[handle.conn]
            kill_process(handle.proc)
            handle.conn.close()
            events.append(WorkerEvent(
                handle.key, "timeout",
                f"exceeded {handle.timeout:.0f}s deadline",
                now - handle.started, handle.proc.pid,
            ))
        return events, ready_extras

    def shutdown(self) -> None:
        """Kill every live worker; leaves no orphans behind."""
        for handle in self._live.values():
            kill_process(handle.proc)
            handle.conn.close()
        self._live.clear()
