"""Table and series formatting for the benchmark harness.

Small, dependency-free helpers that render the paper's tables and figure
series as monospace text: aligned tables with geometric-mean footers
(Table 3), normalized stacked fractions (Fig. 5), and ASCII line series
(Fig. 6).  Kept separate from the benches so the formatting is unit-testable.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

__all__ = [
    "geomean",
    "format_table",
    "format_solve_stats",
    "format_dep_stats",
    "format_suite_report",
    "normalized_breakdown",
    "ascii_series",
]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries (0.0 if none)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = "{:.3f}",
    indent: str = "  ",
) -> str:
    """Render an aligned monospace table."""

    def cell(v) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = [indent + "  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for row in text_rows:
        out.append(indent + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_solve_stats(stats: Mapping[str, float], indent: str = "  ") -> str:
    """Render solver counters (``SolveStats.as_dict()``) as an aligned block.

    Seconds are printed with millisecond precision, counters as integers;
    zero-valued counters are kept so runs are comparable line-by-line.
    """
    rows = []
    for key, value in stats.items():
        if isinstance(value, float) and not float(value).is_integer():
            shown = f"{value:.3f}"
        elif isinstance(value, float):
            shown = f"{value:.3f}" if key.endswith("seconds") else str(int(value))
        else:
            shown = str(value)
        rows.append((key, shown))
    width = max(len(k) for k, _ in rows) if rows else 0
    return "\n".join(f"{indent}{k.ljust(width)}  {v}" for k, v in rows)


def format_dep_stats(stats: Mapping[str, float], indent: str = "  ") -> str:
    """Render dependence fast-path counters (``DepStats.as_dict()``).

    Same layout rules as :func:`format_solve_stats`, so the two blocks line
    up under ``--stats``.
    """
    return format_solve_stats(stats, indent=indent)


_SUITE_STAGES = (
    ("dependence_analysis", "deps"),
    ("auto_transformation", "transform"),
    ("code_generation", "codegen"),
    ("misc", "misc"),
)


def format_suite_report(records: Sequence[Mapping], wall_seconds: Optional[float] = None) -> str:
    """Render suite run records as the paper-style report.

    Two tables over the successful runs — the per-stage time breakdown
    (Table 3 / Fig. 5: absolute seconds plus the fraction of total spent in
    automatic transformation) and the schedule-properties summary — followed
    by a failures section when any run degraded to a ``RunFailure``.
    """
    ok = [r for r in records if r.get("status") == "ok"]
    failed = [r for r in records if r.get("status") == "failure"]
    blocks: list[str] = []

    if ok:
        time_rows = []
        for r in ok:
            t = r["timing"]
            frac = normalized_breakdown(
                {k: t[k] for k, _ in _SUITE_STAGES}
            )["auto_transformation"]
            time_rows.append(
                [r["run_id"]]
                + [t[k] for k, _ in _SUITE_STAGES]
                + [t["total"], f"{100 * frac:.0f}%"]
            )
        time_rows.append(
            ["geomean"]
            + [geomean([r["timing"][k] for r in ok]) for k, _ in _SUITE_STAGES]
            + [geomean([r["timing"]["total"] for r in ok]), ""]
        )
        blocks.append("per-stage time (seconds):")
        blocks.append(
            format_table(
                ["run"] + [label for _, label in _SUITE_STAGES]
                + ["total", "transform%"],
                time_rows,
            )
        )

        prop_rows = []
        for r in ok:
            p = r["schedule_properties"]
            prop_rows.append([
                r["run_id"],
                p["depth"],
                len(p["bands"]),
                p["max_band_width"],
                ",".join(str(i) for i in p["parallel_levels"]) or "-",
                "yes" if p["concurrent_start"] else "no",
                "yes" if p["used_iss"] else "no",
                "yes" if p["used_diamond"] else "no",
                p.get("scheduler_path") or "-",  # pre-quick records lack it
                # PR-10 knobs: absent from older (and all-defaults) records
                "yes" if p.get("rar") else "-",
                (
                    ",".join(str(i) for i in p["reduction_levels"]) or "none"
                ) if p.get("parallel_reductions") else "-",
            ])
        blocks.append("")
        blocks.append("schedule properties:")
        blocks.append(
            format_table(
                ["run", "depth", "bands", "bandw", "par-levels",
                 "concur", "iss", "diamond", "sched", "rar", "redpar"],
                prop_rows,
            )
        )

    if failed:
        blocks.append("")
        blocks.append(f"failures ({len(failed)}):")
        for r in failed:
            f = r["failure"]
            blocks.append(
                f"  {f['run_id']}: {f['kind']} after {f['attempts']} "
                f"attempt(s), {f['elapsed']:.1f}s"
            )

    counts = f"{len(ok)} ok, {len(failed)} failed, {len(records)} total"
    tail = f"; wall {wall_seconds:.1f}s" if wall_seconds is not None else ""
    blocks.append("")
    blocks.append(f"suite: {counts}{tail}")
    return "\n".join(blocks)


def normalized_breakdown(parts: Mapping[str, float]) -> dict[str, float]:
    """Fractions of the total (all zeros if the total is zero)."""
    total = sum(parts.values())
    if total <= 0:
        return {k: 0.0 for k in parts}
    return {k: v / total for k, v in parts.items()}


def ascii_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 48,
    height: int = 12,
    logy: bool = False,
) -> str:
    """Plot one or more series as ASCII art (Fig. 6 panels in a terminal).

    Each series gets a marker character; points are scattered on a
    ``height`` x ``width`` grid with linear (or log) y scaling.
    """
    markers = "*o+x#@%&"
    all_vals = [v for vs in series.values() for v in vs if v is not None]
    if not all_vals or len(xs) < 2:
        return "(no data)"
    ymin, ymax = min(all_vals), max(all_vals)
    if logy:
        if ymin <= 0:
            raise ValueError("log scale requires positive values")
        ymin, ymax = math.log(ymin), math.log(ymax)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]
    for si, (name, vs) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for x, v in zip(xs, vs):
            if v is None:
                continue
            yv = math.log(v) if logy else v
            col = round((x - xmin) / (xmax - xmin) * (width - 1))
            row = round((yv - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
