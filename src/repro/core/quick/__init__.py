"""Quick-permutation scheduling: fusion + dimension matching, no ILP.

Implements the heuristic fast path from Acharya & Bondhugula, "An Approach
for Finding Permutations Quickly: Fusion and Dimension Matching"
(arXiv:1803.10726), the follow-up to the Pluto+ paper this repo reproduces:
most real invocations of a polyhedral optimizer admit a schedule that is a
*permutation* of the original loop dimensions (plus Pluto's fusion/
distribution structure), and such schedules can be found by matching
dimensions across statements and validating candidate rows against the
exact dependence relations — skipping the per-level lexmin ILP entirely.

The package provides three pieces:

* :class:`~repro.core.quick.matching.DimensionMatching` — aligns loop
  dimensions of different statements through the equality structure of the
  dependence polyhedra (the paper's dimension-matching step);
* :class:`~repro.core.quick.scheduler.QuickScheduler` — the Pluto
  scheduling loop (band growth, SCC fusion cuts, exact satisfaction
  bookkeeping) with the ILP hyperplane search replaced by candidate
  permutation rows validated exactly with per-dependence LP minima;
* :func:`~repro.core.quick.driver.attempt_quick_schedule` — the pipeline
  entry point enforcing the fallback contract: the heuristic result is used
  only when it exists, is exactly legal (by construction), and — in
  ``auto`` mode — clears the tilability bound; otherwise the caller runs
  the exact Pluto+ search and the reason is recorded in
  :class:`~repro.core.scheduler.SchedulerStats`.
"""

from repro.core.quick.driver import (
    attempt_quick_schedule,
    fusion_groups_of,
    quick_bound_shortfall,
)
from repro.core.quick.matching import DimensionMatching
from repro.core.quick.scheduler import QuickScheduler

__all__ = [
    "DimensionMatching",
    "QuickScheduler",
    "attempt_quick_schedule",
    "fusion_groups_of",
    "quick_bound_shortfall",
]
