"""The quick-vs-exact arbitration and the fallback contract.

:func:`attempt_quick_schedule` is what the pipeline calls for
``scheduler="quick"`` and ``scheduler="auto"``.  The contract:

* the returned schedule, when not ``None``, is exactly legal — every
  candidate row was validated against the precise dependence relations, so
  ``repro verify`` passes unconditionally;
* ``None`` means "run the exact Pluto+ search", and
  ``stats.fallback_reason`` says why:

  - ``"diamond-requested"`` — ``auto`` never shadows the diamond-tiling
    search (concurrent start needs skewing, which permutations cannot
    express); forced ``quick`` still attempts a permutation schedule;
  - ``"no-legal-permutation"`` — the candidate search wedged: some
    dependence needs a non-permutation hyperplane (skewing, reversal);
  - ``"untilable-band"`` — ``auto`` only: the heuristic terminated but its
    bound is worse than what the exact search is expected to reach (no
    permutable band of width >= 2 although some statement has >= 2 loop
    dimensions, i.e. the schedule cannot be meaningfully tiled).  Forced
    ``quick`` skips this gate and keeps the legal permutation schedule.

Because fallback re-runs the exact scheduler on a reset dependence graph,
an ``auto`` run that falls back is bit-compatible with ``scheduler="exact"``
— same schedule, same generated code.
"""

from __future__ import annotations

from typing import Optional

from repro.core.quick.scheduler import QuickScheduler
from repro.core.scheduler import SchedulerError, SchedulerOptions, SchedulerStats
from repro.core.transform import Schedule
from repro.deps.ddg import DependenceGraph
from repro.frontend.ir import Program

__all__ = ["attempt_quick_schedule", "fusion_groups_of", "quick_bound_shortfall"]


def quick_bound_shortfall(program: Program, sched: Schedule) -> Optional[str]:
    """The ``auto`` quality bound: ``None`` when the quick schedule is kept.

    A permutation schedule is accepted when it preserves tilability: some
    permutable band of width >= 2 whenever any statement has >= 2 loop
    dimensions.  Stencils that need skewing terminate with width-1 bands
    and are sent to the exact search instead.
    """
    max_dim = max((s.dim for s in program.statements), default=0)
    widest = max((b.width for b in sched.bands), default=0)
    if max_dim >= 2 and widest < 2:
        return "untilable-band"
    return None


def fusion_groups_of(sched: Schedule) -> list[list[str]]:
    """Statement fusion decisions encoded by the schedule.

    Statements are fused when they share every scalar (SCC-ordering)
    coordinate above the innermost loop level; the trailing total-order
    dimension (the 2d+1 "beta" suffix) does not split groups.
    """
    loop_levels = [i for i, r in enumerate(sched.rows) if r.kind == "loop"]
    last_loop = max(loop_levels, default=-1)
    groups: dict[tuple, list[str]] = {}
    for s in sched.program.statements:
        key = tuple(
            row.expr_for(s).const_term
            for i, row in enumerate(sched.rows)
            if row.kind == "scalar" and i < last_loop
        )
        groups.setdefault(key, []).append(s.name)
    return [groups[k] for k in sorted(groups)]


def attempt_quick_schedule(
    program: Program,
    ddg: DependenceGraph,
    options: Optional[SchedulerOptions],
    *,
    mode: str,
    diamond: bool,
    stats: SchedulerStats,
) -> Optional[Schedule]:
    """Try the permutation heuristic; ``None`` mandates the exact fallback."""
    if diamond and mode == "auto":
        stats.fallback_reason = "diamond-requested"
        return None

    scheduler = QuickScheduler(program, ddg, options)
    scheduler.stats = stats
    try:
        sched = scheduler.schedule()
    except SchedulerError:
        stats.fallback_reason = "no-legal-permutation"
        return None

    if mode == "auto":
        reason = quick_bound_shortfall(program, sched)
        if reason is not None:
            stats.fallback_reason = reason
            return None
    return sched
