"""Dimension matching: align loop dimensions across statements.

Two dimensions ``i`` of statement ``S`` and ``j`` of statement ``T`` are
*matched* when some dependence between ``S`` and ``T`` couples them with an
equality — its polyhedron contains a row ``±(t_j - s_i) + f(params) = 0``
whose dimension support is exactly that pair.  Such rows come straight from
the conflict equalities of the access functions (``A[i]`` written, ``A[j]``
read ⇒ ``i = j`` on the dependence), so matched dimensions are exactly the
ones that must advance together for the dependence distance to stay small.

Matching classes are the connected components of the match relation over
``(statement, dimension)`` nodes; dimensions nothing couples form singleton
classes.  Classes are ordered outermost-first by the original nesting
position of their members, which is the order the quick scheduler proposes
them as joint candidate rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.deps.analysis import Dependence
from repro.deps.ddg import DependenceGraph
from repro.frontend.ir import Program

__all__ = ["DimensionMatching"]


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict = {}

    def find(self, x):
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _coupled_pairs(dep: Dependence) -> list[tuple[int, int]]:
    """``(source dim index, target dim index)`` pairs an equality couples.

    Only equalities whose dimension support is exactly one source and one
    target dimension with opposite-sign coefficients of equal magnitude
    qualify — parameters and constants may appear freely (periodic
    wraparound dependences couple ``i`` with ``j - N``).
    """
    src_dims = {v: k for k, v in dep.src_rename.items()}
    tgt_dims = {v: k for k, v in dep.tgt_rename.items()}
    src_index = {it: k for k, it in enumerate(dep.source.space.dims)}
    tgt_index = {it: k for k, it in enumerate(dep.target.space.dims)}
    pairs: list[tuple[int, int]] = []
    for con in dep.polyhedron.constraints:
        if not con.equality:
            continue
        s_hit: list[tuple[str, int]] = []
        t_hit: list[tuple[str, int]] = []
        other = False
        for name, coeff in con.expr.terms().items():
            if name in src_dims:
                s_hit.append((src_dims[name], coeff))
            elif name in tgt_dims:
                t_hit.append((tgt_dims[name], coeff))
            elif name in dep.polyhedron.space.params:
                continue
            else:
                other = True
        if other or len(s_hit) != 1 or len(t_hit) != 1:
            continue
        (s_name, s_coeff), (t_name, t_coeff) = s_hit[0], t_hit[0]
        if s_coeff + t_coeff != 0:
            continue
        pairs.append((src_index[s_name], tgt_index[t_name]))
    return pairs


@dataclass
class DimensionMatching:
    """Connected matching classes over ``(statement name, dim index)`` nodes.

    ``classes`` maps are ``{statement name: sorted dim indices}``, ordered
    outermost-first (by the minimum original nesting position of any member,
    then by first statement order for determinism).
    """

    classes: list[dict[str, list[int]]] = field(default_factory=list)

    @classmethod
    def build(
        cls, program: Program, deps: Sequence[Dependence] | DependenceGraph
    ) -> "DimensionMatching":
        if isinstance(deps, DependenceGraph):
            deps = deps.deps
        uf = _UnionFind()
        for s in program.statements:
            for k in range(s.dim):
                uf.find((s.name, k))
        for dep in deps:
            if dep.source is dep.target:
                continue  # self-dependences trivially match dims to themselves
            for si, ti in _coupled_pairs(dep):
                uf.union((dep.source.name, si), (dep.target.name, ti))

        grouped: dict[object, dict[str, list[int]]] = {}
        for s in program.statements:
            for k in range(s.dim):
                root = uf.find((s.name, k))
                grouped.setdefault(root, {}).setdefault(s.name, []).append(k)

        order = {s.name: i for i, s in enumerate(program.statements)}

        def sort_key(members: dict[str, list[int]]):
            min_pos = min(min(dims) for dims in members.values())
            first_stmt = min(order[name] for name in members)
            return (min_pos, first_stmt)

        classes = sorted(
            ({name: sorted(dims) for name, dims in members.items()}
             for members in grouped.values()),
            key=sort_key,
        )
        return cls(classes)

    def classes_for(self, name: str) -> list[dict[str, list[int]]]:
        return [c for c in self.classes if name in c]
