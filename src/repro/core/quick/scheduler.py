"""The quick scheduler: candidate permutation rows instead of per-level ILPs.

:class:`QuickScheduler` subclasses :class:`~repro.core.scheduler.PlutoScheduler`
and inherits its entire band-growth loop — active-dependence tracking, exact
satisfaction bookkeeping over shrinking "remaining" polyhedra, SCC fusion
cuts (``--fuse``), rank accounting, and the final total-order dimension.
Only :meth:`find_hyperplane` is replaced: instead of building and lexmin-
solving an ILP, it proposes *candidate rows* — unit dimension vectors chosen
by dimension matching and nesting position — and accepts the first one that
is exactly legal against every active dependence.

Legality of a candidate is checked the same way the exact scheduler checks
satisfaction: the minimum of the dependence distance over the dependence's
remaining polyhedron must be ``>= 0`` (weak legality keeps the band
permutable; the shared satisfaction pass retires dependences that become
strongly satisfied).  These minima are rational LPs memoized by the
polyhedral cache — orders of magnitude cheaper than the per-level lexmin
ILPs they replace, and sound: a schedule assembled from accepted rows is
legal by construction, so it always passes ``repro verify``.

When no candidate is legal the band closes / an SCC cut is taken exactly as
in the exact scheduler; if the loop wedges (a permutation-free program such
as a stencil that needs skewing), the inherited ``SchedulerError`` surfaces
and the driver falls back to the exact Pluto+ search.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional, Sequence

from repro.core.quick.matching import DimensionMatching
from repro.core.scheduler import PlutoScheduler, SchedulerOptions
from repro.core.transform import Schedule, ScheduleRow
from repro.deps.analysis import Dependence
from repro.deps.ddg import DependenceGraph
from repro.frontend.ir import Program
from repro.polyhedra import AffExpr

__all__ = ["QuickScheduler"]

#: Per-level cap on candidate rows tried before giving up on the level.
#: Candidates are cheap (one LP minimum per active dependence) but the
#: enumeration must stay linear in program size — this is the safety valve.
MAX_CANDIDATES_PER_LEVEL = 64


class QuickScheduler(PlutoScheduler):
    """Pluto's scheduling loop with permutation candidates in place of ILPs."""

    def __init__(
        self,
        program: Program,
        ddg: DependenceGraph,
        options: Optional[SchedulerOptions] = None,
    ):
        super().__init__(program, ddg, options)
        self._matching = DimensionMatching.build(program, ddg)

    # -- the replaced hyperplane search ------------------------------------

    def find_hyperplane(
        self, sched: Schedule, active: Sequence[Dependence]
    ) -> Optional[ScheduleRow]:
        t0 = time.perf_counter()
        try:
            tried = 0
            for assign in self._assignments(sched):
                if tried >= MAX_CANDIDATES_PER_LEVEL:
                    return None
                tried += 1
                self.stats.quick_candidates += 1
                row = self._row_for(assign)
                if self._row_is_legal(row, active):
                    return row
            return None
        finally:
            self.stats.quick_seconds += time.perf_counter() - t0

    # -- candidate enumeration ---------------------------------------------

    def _unused_dims(self, sched: Schedule) -> dict[str, list[int]]:
        """Original dimensions not yet consumed by an earlier quick row.

        Quick rows are always unit vectors, so the span of ``h_rows`` is
        exactly the set of dimension indices those rows touch.
        """
        out: dict[str, list[int]] = {}
        for s in self.program.statements:
            used: set[int] = set()
            for hrow in sched.h_rows(s):
                used.update(k for k, c in enumerate(hrow) if c)
            out[s.name] = [k for k in range(s.dim) if k not in used]
        return out

    def _assignments(self, sched: Schedule) -> Iterator[dict[str, int]]:
        """Candidate ``{statement name: dim index}`` assignments, best first.

        Three generations, deduplicated:

        1. *matched* — one class of matched dimensions at a time, outermost
           first: every statement with an unused dimension in the class
           advances it together (the fusion-profitable candidates);
        2. *positional* — the k-th unused dimension of every statement
           simultaneously (original nesting order, the common case for
           single-statement programs and identical nests);
        3. *solo* — one statement, one dimension (lets a group make rank
           progress when no shared dimension is legal).
        """
        unused = self._unused_dims(sched)
        pending = {
            s.name
            for s in self.program.statements
            if unused[s.name] and sched.rank[s.name] < s.dim
        }
        if not pending:
            return
        seen: set[frozenset] = set()

        def emit(raw: dict[str, int]) -> Optional[dict[str, int]]:
            assign = {
                name: k for name, k in raw.items()
                if name in pending and k in set(unused[name])
            }
            if not assign:
                return None
            key = frozenset(assign.items())
            if key in seen:
                return None
            seen.add(key)
            return assign

        for members in self._matching.classes:
            raw = {}
            for name, dims in members.items():
                avail = [k for k in dims if name in pending and k in set(unused[name])]
                if avail:
                    raw[name] = avail[0]
            a = emit(raw)
            if a:
                yield a

        depth = max((len(unused[name]) for name in pending), default=0)
        for k in range(depth):
            a = emit({
                name: unused[name][k]
                for name in pending
                if len(unused[name]) > k
            })
            if a:
                yield a

        for s in self.program.statements:
            if s.name not in pending:
                continue
            for k in unused[s.name]:
                a = emit({s.name: k})
                if a:
                    yield a

    def _row_for(self, assign: dict[str, int]) -> ScheduleRow:
        exprs: dict[str, AffExpr] = {}
        for s in self.program.statements:
            k = assign.get(s.name)
            if k is None:
                exprs[s.name] = AffExpr.const(s.space, 0)
            else:
                exprs[s.name] = AffExpr.var(s.space, s.space.dims[k])
        return ScheduleRow("loop", exprs)

    # -- exact validation ---------------------------------------------------

    def _row_is_legal(
        self, row: ScheduleRow, active: Sequence[Dependence]
    ) -> bool:
        """Exact weak legality: distance >= 0 over every active dependence's
        remaining (not-yet-ordered) instance pairs."""
        for dep in active:
            remaining = self._remaining[id(dep)]
            expr = dep.distance_expr(
                row.expr_for(dep.source), row.expr_for(dep.target)
            )
            self.stats.quick_validations += 1
            try:
                mn = remaining.min_of(expr)
            except ValueError:
                return False  # unbounded below: a backwards pair exists
            if mn is not None and mn < 0:
                return False
        return True
