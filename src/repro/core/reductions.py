"""Reduction detection and self-dependence relaxation.

Commutative-associative accumulations (``C[i][j] = C[i][j] + ...``, dot
products, variance sums) serialize their accumulation dimension under the
exact dependence model: the statement's self-dependence on the accumulator
is carried by every iterator that does not appear in the written cell's
subscripts.  Following Doerfert et al. ("Polly's Polyhedral Scheduling in
the Presence of Reductions"), those self-dependences may be *relaxed* —
removed from the legality set handed to the scheduler — because any
execution order of the accumulation yields the same result up to
floating-point reassociation.  The pipeline then discharges the relaxed
dependences at emission time (privatized partial sums on the Python
backend, ``#pragma omp .. reduction(..)`` clauses on the C backend), and
verification switches from bitwise to tolerance comparison.

Detection works on the authoritative executable ``stmt.body`` (the Python
form the validation runtime runs), not on the display text: a statement is
a reduction when its body is ``T[idx] = T[idx] op expr`` (or the compound
``T[idx] op= expr``) with ``op`` commutative-associative (``+``/``*``;
``-`` is folded into ``+`` of the negated update) and ``expr`` never
reading ``T``, and at least one statement iterator is absent from the
written subscripts — those iterators are the reduction dimensions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.deps.analysis import Dependence
from repro.frontend.ir import Program, Statement

__all__ = [
    "REDUCTION_IDENTITY",
    "ReductionInfo",
    "ReductionSplit",
    "detect_reductions",
    "reduction_split",
    "relax_reduction_deps",
    "tag_reduction_rows",
]

#: identity element emitted as the partial-sum seed, per combine operator
REDUCTION_IDENTITY = {"+": "0.0", "*": "1.0"}


@dataclass(frozen=True)
class ReductionInfo:
    """One detected reduction statement."""

    stmt: str                 # statement name
    array: str                # accumulator array
    op: str                   # combine operator: "+" | "*"
    dims: tuple[str, ...]     # reduction iterators (absent from the write)

    def as_dict(self) -> dict:
        return {
            "stmt": self.stmt,
            "array": self.array,
            "op": self.op,
            "dims": list(self.dims),
        }


@dataclass
class ReductionSplit:
    """AST-level split of a reduction body, shared by both emitters.

    ``update`` is the expression accumulated into the target; for a ``-``
    body it is the negated operand and ``op`` is ``"+"``, so
    ``target = target op update`` is always an exact rewrite.
    """

    array: str
    op: str
    target: ast.expr          # the written subscript, e.g. ``C[i, j]``
    update: ast.expr          # the accumulated expression


def _references_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def _subscript_base(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return node.value.id
    return None


def reduction_split(body: str) -> Optional[ReductionSplit]:
    """Parse a statement body and split it as a reduction, or ``None``.

    Accepts the executable Python body form (``C[i, j] = C[i, j] + e``,
    ``s[()] = s[()] * e``, ``T[idx] += e``).  The update expression must
    not read the accumulator array.
    """
    try:
        tree = ast.parse(body.strip())
    except SyntaxError:
        return None
    if len(tree.body) != 1:
        return None
    node = tree.body[0]

    if isinstance(node, ast.AugAssign):
        array = _subscript_base(node.target)
        if array is None:
            return None
        if isinstance(node.op, ast.Add):
            op, update = "+", node.value
        elif isinstance(node.op, ast.Mult):
            op, update = "*", node.value
        elif isinstance(node.op, ast.Sub):
            op, update = "+", ast.UnaryOp(ast.USub(), node.value)
        else:
            return None
        if _references_name(node.value, array):
            return None
        return ReductionSplit(array, op, node.target, update)

    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
        return None
    target = node.targets[0]
    array = _subscript_base(target)
    if array is None or not isinstance(node.value, ast.BinOp):
        return None
    value = node.value
    if isinstance(value.op, ast.Add):
        op = "+"
    elif isinstance(value.op, ast.Mult):
        op = "*"
    elif isinstance(value.op, ast.Sub):
        op = "-"
    else:
        return None
    target_src = ast.unparse(target)
    left_is = ast.unparse(value.left) == target_src
    right_is = ast.unparse(value.right) == target_src
    if op == "-":
        # subtraction only commutes as target - e == target + (-e)
        if not left_is or right_is:
            return None
        update: ast.expr = ast.UnaryOp(ast.USub(), value.right)
        op = "+"
    elif left_is == right_is:
        # both (T = T + T: degenerate) or neither operand is the target
        return None
    else:
        update = value.right if left_is else value.left
    if _references_name(update, array):
        return None
    return ReductionSplit(array, op, target, update)


def detect_reductions(program: Program) -> list[ReductionInfo]:
    """All reduction statements of ``program``, in statement order."""
    out: list[ReductionInfo] = []
    for stmt in program.statements:
        info = _detect_one(stmt)
        if info is not None:
            out.append(info)
    return out


def _detect_one(stmt: Statement) -> Optional[ReductionInfo]:
    split = reduction_split(stmt.body)
    if split is None:
        return None
    if len(stmt.writes) != 1 or stmt.writes[0].array != split.array:
        return None
    write = stmt.writes[0]
    used = set()
    for expr in write.map.exprs:
        for dim in stmt.space.dims:
            if expr.coeff_of(dim):
                used.add(dim)
    dims = tuple(d for d in stmt.space.dims if d not in used)
    if not dims:
        return None  # every iterator addresses the cell: nothing to relax
    return ReductionInfo(stmt.name, split.array, split.op, dims)


def relax_reduction_deps(
    deps: Sequence[Dependence], reductions: Sequence[ReductionInfo]
) -> tuple[list[Dependence], list[Dependence]]:
    """Split ``deps`` into ``(kept, relaxed)``.

    A dependence is relaxed when it is a *self*-dependence of a reduction
    statement on its accumulator array.  Because detection rejects bodies
    whose update expression reads the accumulator, every such
    self-dependence connects two accumulations of the same cell — exactly
    the ordering the commutative-associative operator makes irrelevant.
    Inter-statement dependences (initialization, finalization, consumers)
    are always kept.
    """
    accumulators = {(r.stmt, r.array) for r in reductions}
    kept: list[Dependence] = []
    relaxed: list[Dependence] = []
    for d in deps:
        if d.source is d.target and (d.source.name, d.array) in accumulators:
            relaxed.append(d)
        else:
            kept.append(d)
    return kept, relaxed


def tag_reduction_rows(
    schedule,
    carried: dict[int, list],
    reductions: Sequence[ReductionInfo],
    mode: str,
) -> int:
    """Tag schedule rows that are parallel only thanks to relaxation.

    ``carried`` is :func:`repro.core.properties.mark_parallelism`'s report:
    level index -> relaxed dependences that level would carry.  A row both
    marked parallel (no *real* dependence carried) and present in
    ``carried`` is a reduction dimension — executing it in parallel
    reorders an accumulation, nothing else — so it gets the emitter-facing
    ``row.reduction`` tags.  Returns the number of rows tagged.
    """
    info_by_key = {(r.stmt, r.array): r for r in reductions}
    tagged = 0
    for level, deps in carried.items():
        row = schedule.rows[level]
        if not row.parallel:
            continue
        tags: list[dict] = []
        for d in deps:
            info = info_by_key.get((d.source.name, d.array))
            if info is None:
                continue
            tag = {
                "stmt": info.stmt,
                "array": info.array,
                "op": info.op,
                "mode": mode,
            }
            if tag not in tags:
                tags.append(tag)
        if tags:
            row.reduction = tags
            tagged += 1
    return tagged
