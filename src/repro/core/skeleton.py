"""Cross-request structural warm-start: fingerprints, solve replay, store.

The serving cache (PR 4) answers *exact* repeats: same serialized IR, same
resolved options, byte-for-byte.  Real request streams are sweeps — the
same kernel resubmitted with a different tile size, a different execution
backend, a renamed program, rescaled problem-size parameters.  Every such
near-duplicate is an exact-cache miss that pays the whole Farkas + lexmin
pipeline again even though the PLUTO+ constraint system only depends on
the *shape* of the domains and dependences.

This module turns those misses into warm solves, in three pieces:

* **structural fingerprint** — a canonical hash of the request modulo
  parameter values: the program's structural dict (see
  :func:`repro.frontend.serialize.structural_program_dict`) plus only the
  *schedule-relevant* options (tile sizes, backends, post-scheduling
  passes are dropped).  Two requests with the same fingerprint run the
  same hyperplane search over the same dependence shapes.

* **solve replay** (:class:`WarmStart`) — the per-level artifacts worth
  reusing.  Every ``find_hyperplane`` ILP is identified by a *solve key*:
  an exhaustive hash of everything that determines the model and the
  solver's answer (algorithm, bounds, backend, statement spaces, current
  ranks and hyperplane rows, the active dependences' polyhedra, parameter
  lower bounds).  Because every model variable appears in the lexmin
  objective order, the lexicographic optimum is a *unique* vector — so a
  recorded solution vector for an identical solve key can be replayed
  verbatim and is bit-identical to re-solving by construction.  Any key
  mismatch (e.g. rescaled ``param_min`` changes the Farkas system) falls
  back to a cold solve for that level; correctness never rests on the
  record.

* **skeleton store** (:class:`SkeletonStore`) — per structural
  fingerprint, the recorded solves plus descriptive metadata (Farkas row
  skeleton sizes, chosen band structure, the quick-scheduler verdict),
  content-addressed on disk following the ``ScheduleCache`` pattern:
  ``<root>/<fp[:2]>/<fp>.json``, atomic tmp+rename writes, orphaned-tmp
  sweeping, restart survival.  Enabled via ``REPRO_SKELETON_CACHE`` (the
  daemon sets it from ``--skeleton-dir``); unset, empty, or
  ``REPRO_EXACT_LEGACY=1`` disables the whole layer.

The store can only ever change *how fast* a schedule is found, never
*which* schedule: replay fires solely on exact solve-key matches, and the
regression suite pins warm results byte-identical to cold ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Mapping, Optional

from repro.ilp import legacy_exact_mode

__all__ = [
    "SKELETON_FORMAT_VERSION",
    "SCHEDULE_RELEVANT_OPTIONS",
    "SkeletonStore",
    "SkeletonStoreStats",
    "WarmStart",
    "dependence_digest",
    "scheduler_solve_key",
    "skeleton_store_from_env",
    "structural_fingerprint",
]

#: bumped whenever the fingerprint, solve-key, or record shape changes —
#: folded into both, so stale records are simply never looked up again
SKELETON_FORMAT_VERSION = 1

#: the PipelineOptions fields that can change which schedule the
#: hyperplane search finds.  Everything else (tiling knobs, execution
#: backend, cache toggles) only affects post-scheduling passes and is
#: deliberately *excluded*, so an option sweep over them lands on one
#: fingerprint.
SCHEDULE_RELEVANT_OPTIONS = (
    "algorithm",
    "scheduler",
    "coeff_bound",
    "ilp_backend",
    "fuse",
    "iss",
    "diamond",
    # RAR bounding rows change the per-level model without changing the
    # active dependence set, and reduction relaxation changes the set
    # itself — records from either knob must never be replayed for the
    # other.  Both are omitted from as_dict() at their defaults, so every
    # pre-existing fingerprint is unchanged.
    "rar",
    "parallel_reductions",
)

#: puts between opportunistic orphaned-tmp sweeps (see SkeletonStore.merge)
TMP_SWEEP_EVERY = 64

_DEFAULT_MEMORY_ENTRIES = 32


def _canonical_hash(payload) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- fingerprints ------------------------------------------------------------

def structural_fingerprint(program_dict: Mapping, options_dict: Mapping) -> str:
    """Structural identity of one scheduling request (hex sha256).

    Distinct from :func:`repro.server.cache.cache_key`: the program enters
    modulo its name and parameter *values* (shape only), and only the
    :data:`SCHEDULE_RELEVANT_OPTIONS` subset of the options participates.
    The pipeline fingerprint is folded in so records from a pipeline that
    could schedule differently are never consulted.
    """
    from repro.frontend.serialize import structural_program_dict
    from repro.pipeline import pipeline_fingerprint

    options = {
        k: options_dict[k] for k in SCHEDULE_RELEVANT_OPTIONS
        if k in options_dict
    }
    return _canonical_hash({
        "v": SKELETON_FORMAT_VERSION,
        "pipeline": pipeline_fingerprint(options_dict.get("scheduler", "exact")),
        "program": structural_program_dict(program_dict),
        "options": options,
    })


def dependence_digest(dep, memo: Optional[dict] = None) -> str:
    """Content identity of one dependence edge (hex sha256).

    Hashes the raw product-space polyhedron (constraint rows, order
    insensitive) plus the edge's endpoints and renames — everything the
    Farkas elimination consumes.  ``memo`` (keyed by ``id(dep)``) amortizes
    the hash across the per-level solve keys of one scheduler run.
    """
    if memo is not None:
        cached = memo.get(id(dep))
        if cached is not None:
            return cached
    space = dep.polyhedron.space
    rows = sorted(
        (tuple(str(x) for x in c.coeffs), c.equality)
        for c in dep.polyhedron.constraints
    )
    digest = _canonical_hash([
        dep.source.name, dep.target.name, dep.kind, dep.array,
        sorted(dep.src_rename.items()), sorted(dep.tgt_rename.items()),
        list(space.dims), list(space.params), rows,
    ])
    if memo is not None:
        memo[id(dep)] = digest
    return digest


def scheduler_solve_key(
    program, options, sched, active, memo: Optional[dict] = None, extra=None
) -> str:
    """Identity of one ``find_hyperplane`` ILP solve (hex sha256).

    Covers every input the per-level model is built from — scheduler
    options that shape the model or pick the solver, statement spaces,
    current ranks and hyperplane rows, the active dependences' polyhedra,
    and the parameter lower bounds (they enter the dependence context and
    hence the Farkas system).  ``extra`` tags variants that add side
    constraints on top of ``build_model`` (the diamond search).  Two solves
    with equal keys have the same unique lexmin optimum, so a recorded
    solution is exact — not heuristic — reuse.
    """
    payload = {
        "v": SKELETON_FORMAT_VERSION,
        "alg": options.algorithm,
        "b": options.coeff_bound,
        "csum": options.csum_objective,
        "ilp": options.ilp_backend,
        "auto": options.auto_threshold,
        "params": list(program.params),
        "pmin": sorted(program.param_min.items()),
        "stmts": [
            [
                s.name,
                list(s.space.dims),
                list(s.space.params),
                sched.rank[s.name],
                sched.h_rows(s),
            ]
            for s in program.statements
        ],
        "deps": sorted(dependence_digest(d, memo) for d in active),
        "extra": extra,
    }
    return _canonical_hash(payload)


# -- per-run replay context --------------------------------------------------

class WarmStart:
    """Recorded solves for one structural fingerprint, live for one run.

    ``solves`` maps solve key → ``{"status": ..., "assignment": {var:
    "int-or-fraction-string"}}``.  The scheduler consults it per level
    (:meth:`lookup`) and records every cold solve (:meth:`record`);
    ``hits``/``misses`` drive the request's ``structural_path`` verdict
    and ``dirty`` tells the pipeline whether the store needs a merge.
    """

    def __init__(self, solves: Optional[dict] = None):
        self.solves: dict = dict(solves or {})
        self.hits = 0
        self.misses = 0
        self.dirty = False
        #: informational Farkas row-skeleton sizes, label → [legal, bound]
        self.farkas: dict[str, list[int]] = {}
        #: shared dependence-digest memo across this run's solve keys
        self.digest_memo: dict = {}

    def lookup(self, skey: str) -> Optional[dict]:
        rec = self.solves.get(skey)
        return rec if isinstance(rec, dict) else None

    def record(self, skey: str, record: dict) -> None:
        if skey not in self.solves:
            self.solves[skey] = record
            self.dirty = True

    def forget(self, skey: str) -> None:
        """Drop a record that failed to replay (corrupt/foreign)."""
        if self.solves.pop(skey, None) is not None:
            self.dirty = True

    def note_farkas(self, label: str, n_legal: int, n_bound: int) -> None:
        if label not in self.farkas:
            self.farkas[label] = [n_legal, n_bound]
            self.dirty = True


# -- the on-disk store -------------------------------------------------------

@dataclass
class SkeletonStoreStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid_dropped: int = 0
    tmp_swept: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid_dropped": self.invalid_dropped,
            "tmp_swept": self.tmp_swept,
        }


class SkeletonStore:
    """Disk-persistent skeleton records, one JSON file per fingerprint.

    Follows the ``ScheduleCache`` discipline — ``<root>/<fp[:2]>/<fp>.json``
    written atomically via tmp+rename, invalid files dropped and
    recomputed, orphaned temporaries swept at startup *and* opportunistically
    every :data:`TMP_SWEEP_EVERY` merges (long-lived daemons accumulate
    orphans from killed workers long after startup) — plus a small
    in-memory LRU so a warm worker serving a sweep re-reads nothing.
    """

    def __init__(
        self,
        root: os.PathLike,
        memory_entries: int = _DEFAULT_MEMORY_ENTRIES,
        sweep_every: int = TMP_SWEEP_EVERY,
    ):
        self.root = Path(root)
        self.memory_entries = max(0, int(memory_entries))
        self.sweep_every = max(1, int(sweep_every))
        self.stats = SkeletonStoreStats()
        self._mem: OrderedDict[str, dict] = OrderedDict()
        self._lock = Lock()
        self._puts = 0
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats.tmp_swept += self._sweep_tmp()

    # -- plumbing ----------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def _sweep_tmp(self, max_age: float = 300.0) -> int:
        """Remove orphaned atomic-write temporaries left by killed writers.

        Files younger than ``max_age`` may belong to a live writer in
        another process sharing the directory and are left alone.
        """
        swept = 0
        now = time.time()
        for tmp in self.root.glob("*/*.tmp.*"):
            try:
                if now - tmp.stat().st_mtime < max_age:
                    continue
                tmp.unlink()
                swept += 1
            except OSError:
                continue  # raced another sweeper, or unreadable: skip
        return swept

    @staticmethod
    def _valid(record) -> bool:
        return (
            isinstance(record, dict)
            and record.get("version") == SKELETON_FORMAT_VERSION
            and isinstance(record.get("solves"), dict)
        )

    def _remember(self, fingerprint: str, record: dict) -> None:
        # caller holds the lock
        if self.memory_entries == 0:
            return
        if fingerprint in self._mem:
            self._mem.move_to_end(fingerprint)
        else:
            while len(self._mem) >= self.memory_entries:
                self._mem.popitem(last=False)
        self._mem[fingerprint] = record

    # -- lookups -----------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[dict]:
        """The stored record, or ``None``; invalid files are dropped."""
        with self._lock:
            record = self._mem.get(fingerprint)
            if record is not None:
                self._mem.move_to_end(fingerprint)
                self.stats.hits += 1
                return record
        path = self.path_for(fingerprint)
        corrupt = False
        try:
            record = json.loads(path.read_text())
        except OSError:
            record = None
        except ValueError:
            record, corrupt = None, True  # killed writer / truncated file
        if corrupt or (record is not None and not self._valid(record)):
            with self._lock:
                self.stats.invalid_dropped += 1
            try:
                path.unlink()
            except OSError:
                pass
            record = None
        with self._lock:
            if record is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._remember(fingerprint, record)
            return record

    # -- stores ------------------------------------------------------------

    def merge(
        self,
        fingerprint: str,
        solves: Mapping,
        meta: Optional[Mapping] = None,
        farkas: Optional[Mapping] = None,
    ) -> dict:
        """Read-merge-write one fingerprint's record (atomic replace).

        New solve keys are added to whatever is already on disk — a sweep
        that discovers new levels (e.g. a diamond variant) grows the same
        record; existing keys are kept (first writer wins, and equal keys
        imply equal solutions anyway).  Returns the merged record.
        """
        path = self.path_for(fingerprint)
        current = None
        try:
            current = json.loads(path.read_text())
        except (OSError, ValueError):
            pass
        if not self._valid(current):
            current = {
                "version": SKELETON_FORMAT_VERSION,
                "fingerprint": fingerprint,
                "solves": {},
                "farkas": {},
                "meta": {},
            }
        for skey, rec in solves.items():
            current["solves"].setdefault(skey, rec)
        if farkas:
            stored = current.setdefault("farkas", {})
            for label, rows in farkas.items():
                stored.setdefault(label, rows)
        if meta:
            current.setdefault("meta", {}).update(meta)
        current["meta"]["updated"] = time.time()

        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(current, sort_keys=True))
        os.replace(tmp, path)
        with self._lock:
            self.stats.stores += 1
            self._remember(fingerprint, current)
            self._puts += 1
            due = self._puts % self.sweep_every == 0
        if due:
            swept = self._sweep_tmp()
            with self._lock:
                self.stats.tmp_swept += swept
        return current

    # -- introspection -----------------------------------------------------

    def disk_len(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def snapshot(self) -> dict:
        with self._lock:
            stats = self.stats.as_dict()
        return {**stats, "disk_entries": self.disk_len(), "root": str(self.root)}


# -- resolution --------------------------------------------------------------

_STORES: dict[str, SkeletonStore] = {}
_STORES_LOCK = Lock()


def skeleton_store_from_env() -> Optional[SkeletonStore]:
    """The process-wide store for ``REPRO_SKELETON_CACHE``, or ``None``.

    Unset/empty disables the layer outright, as does
    ``REPRO_EXACT_LEGACY=1`` (the seed-reproduction mode must not take any
    fast path).  Stores are memoized per path so a warm worker keeps its
    in-memory tier and stats across the requests it serves.
    """
    path = os.environ.get("REPRO_SKELETON_CACHE", "").strip()
    if not path or legacy_exact_mode():
        return None
    with _STORES_LOCK:
        store = _STORES.get(path)
        if store is None:
            store = _STORES[path] = SkeletonStore(path)
        return store
