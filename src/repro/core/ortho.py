"""Linear-independence machinery: orthogonal sub-spaces and the constraints
both algorithms derive from them (Section 3.4).

Given the rows ``H_S`` already found for a statement (dimension coefficients
of the hyperplanes at outer levels), a new hyperplane must have a non-zero
component in the orthogonal sub-space ``H_perp``:

* **Pluto (classic)** restricts to the non-negative orthant of that sub-space:
  ``r . c >= 0`` for every row ``r`` of the orthogonal *projector*
  ``I - H^T (H H^T)^-1 H`` and ``sum_r r . c >= 1``;
* **Pluto+** models the complete space with one binary per statement: with
  ``|c_i| <= b``, each row value ``r . c`` lies in ``[-R_r, R_r]``; using a
  radix ``rho > max_r R_r``, ``sum_r rho^(r-1) (r.c) == 0`` iff every row
  value is zero, so two big-M rows indexed by ``delta^l_S`` exclude exactly
  the linearly-dependent hyperplanes.

The same radix trick with rows = unit vectors gives zero-solution avoidance
(Section 3.3, eqs. (5)/(6)).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.names import c_name, delta_name, deltal_name
from repro.frontend.ir import Statement
from repro.ilp import LinearConstraint
from repro.linalg import FMatrix, integer_normalize_row

__all__ = [
    "orthogonal_projector_rows",
    "orthogonal_basis_rows",
    "pluto_independence_constraints",
    "plutoplus_nonzero_constraints",
    "plutoplus_independence_constraints",
]


def orthogonal_projector_rows(h_rows: list[list[int]], m: int) -> list[list[int]]:
    """Integerized non-zero rows of ``I - H^T (H H^T)^-1 H`` (Pluto's
    ``H_perp`` construction), reduced to a linearly independent subset.

    Returns the identity rows when ``H`` is empty, and ``[]`` when ``H`` has
    full rank ``m``.
    """
    if not h_rows:
        return [[int(i == j) for j in range(m)] for i in range(m)]
    h = FMatrix(h_rows)
    if h.ncols != m:
        raise ValueError("H row width mismatch")
    ht = h.transpose()
    gram = h @ ht
    try:
        gram_inv = gram.inverse()
    except ValueError:
        # Rows of H are linearly dependent; reduce to an independent subset.
        reduced = _independent_rows(h_rows, m)
        return orthogonal_projector_rows(reduced, m) if len(reduced) < len(h_rows) else []
    proj = ht @ gram_inv @ h
    rows: list[list[int]] = []
    for i in range(m):
        row = [
            Fraction(int(i == j)) - proj.rows[i][j] for j in range(m)
        ]
        norm = integer_normalize_row(row)
        if any(norm):
            rows.append(norm)
    return _independent_rows(rows, m)


def _independent_rows(rows: list[list[int]], m: int) -> list[list[int]]:
    out: list[list[int]] = []
    for row in rows:
        if not any(row):
            continue
        candidate = out + [row]
        if FMatrix(candidate).rank() == len(candidate):
            out.append(row)
    return out


def orthogonal_basis_rows(h_rows: list[list[int]], m: int) -> list[list[int]]:
    """Integer nullspace basis of ``H`` (used by Pluto+, any orthant is fine)."""
    from repro.linalg import orthogonal_complement

    return orthogonal_complement(h_rows, m)


def pluto_independence_constraints(
    stmt: Statement, h_rows: list[list[int]]
) -> list[LinearConstraint]:
    """Classic Pluto: non-negative orthant of the orthogonal sub-space.

    ``r . c >= 0`` for each projector row plus ``sum_r (r . c) >= 1``.
    Returns ``[]`` when the statement is already full rank (no constraint —
    callers then allow the zero row for this statement).
    """
    m = stmt.dim
    perp = orthogonal_projector_rows(h_rows, m)
    if not perp:
        return []
    out: list[LinearConstraint] = []
    total: dict[str, int] = {}
    for row in perp:
        terms = {
            c_name(stmt, it): coef
            for it, coef in zip(stmt.space.dims, row)
            if coef != 0
        }
        out.append(LinearConstraint(terms, 0, label=f"ortho+:{stmt.name}"))
        for name, coef in terms.items():
            total[name] = total.get(name, 0) + coef
    out.append(LinearConstraint(total, -1, label=f"ortho-sum:{stmt.name}"))
    return out


def _radix_rows(
    stmt: Statement,
    rows: list[list[int]],
    bound: int,
    decision: str,
) -> list[LinearConstraint]:
    """The two big-M rows excluding "all row values zero" (eqs. (5)/(6)).

    ``rows`` are the H_perp rows (or unit vectors for zero avoidance);
    ``bound`` is ``b``; ``decision`` the binary variable name.
    """
    # Per-row maximum magnitude of r . c given |c_i| <= b.
    row_max = [bound * sum(abs(x) for x in row) for row in rows]
    radix = max(row_max) + 1
    big_m = radix ** len(rows)

    combo: dict[str, int] = {}
    weight = 1
    for row in rows:
        for it, coef in zip(stmt.space.dims, row):
            if coef:
                name = c_name(stmt, it)
                combo[name] = combo.get(name, 0) + weight * coef
        weight *= radix

    pos = dict(combo)
    pos[decision] = big_m
    neg = {k: -v for k, v in combo.items()}
    neg[decision] = -big_m
    return [
        LinearConstraint(pos, -1, label=f"radix+:{stmt.name}"),
        LinearConstraint(neg, big_m - 1, label=f"radix-:{stmt.name}"),
    ]


def plutoplus_nonzero_constraints(
    stmt: Statement, bound: int
) -> list[LinearConstraint]:
    """Zero-solution avoidance (Section 3.3): all orthants, one binary.

    With unit-vector rows the radix is ``b + 1`` (the paper's base-5 example
    for ``b = 4``).
    """
    unit_rows = [
        [int(i == j) for j in range(stmt.dim)] for i in range(stmt.dim)
    ]
    return _radix_rows(stmt, unit_rows, bound, delta_name(stmt))


def plutoplus_independence_constraints(
    stmt: Statement, h_rows: list[list[int]], bound: int
) -> list[LinearConstraint]:
    """Linear independence over the complete orthogonal sub-space (3.4).

    Empty when the statement is already full rank.
    """
    perp = orthogonal_basis_rows(h_rows, stmt.dim)
    if not perp:
        return []
    return _radix_rows(stmt, perp, bound, deltal_name(stmt))
