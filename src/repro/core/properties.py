"""Post-scheduling hyperplane properties: parallel / sequential marking.

A loop level is parallel when no dependence is carried there: every
dependence is either satisfied at an earlier level or has distance exactly
zero at this level (for all not-yet-ordered instance pairs).  This is the
"Misc/other: computing hyperplane properties" component of the paper's
compile-time breakdown (Section 4.1).
"""

from __future__ import annotations

from typing import Optional

from repro.core.transform import Schedule
from repro.deps.ddg import DependenceGraph
from repro.polyhedra import BasicSet, Constraint

__all__ = ["mark_parallelism"]

_UNBOUNDED = object()


def _try_min(rem: BasicSet, expr):
    try:
        return rem.min_of(expr)
    except ValueError:
        return _UNBOUNDED


def _try_max(rem: BasicSet, expr):
    try:
        return rem.max_of(expr)
    except ValueError:
        return _UNBOUNDED


def mark_parallelism(
    sched: Schedule, ddg: DependenceGraph, relaxed=()
) -> dict[int, list]:
    """Fill ``row.parallel`` for every loop level of ``sched``.

    Works on the dependences' full polyhedra, re-deriving the ordering state
    level by level (satisfaction levels recorded by the scheduler are not
    reused, so this pass also works on hand-built schedules).

    ``relaxed`` — relaxed reduction self-dependences excluded from the DDG
    (:mod:`repro.core.reductions`) — are tracked with the same level-by-level
    machinery but never influence ``row.parallel``; the return value maps
    each level index to the relaxed dependences it would carry, so the
    pipeline can tag reduction-parallel rows for the emitters.  Empty when
    ``relaxed`` is empty (the default path).
    """
    remaining: dict[int, Optional[BasicSet]] = {
        id(d): d.polyhedron for d in ddg.deps
    }
    remaining.update({id(d): d.polyhedron for d in relaxed})
    relaxed_ids = {id(d) for d in relaxed}
    relaxed_carried: dict[int, list] = {}
    for level, row in enumerate(sched.rows):
        if row.kind == "scalar":
            for d in list(ddg.deps) + list(relaxed):
                rem = remaining.get(id(d))
                if rem is None:
                    continue
                if (
                    row.expr_for(d.source).const_term
                    < row.expr_for(d.target).const_term
                ):
                    remaining[id(d)] = None  # strictly ordered here
            continue

        carried = False
        for d in list(ddg.deps) + list(relaxed):
            key = id(d)
            is_relaxed = key in relaxed_ids
            rem = remaining.get(key)
            if rem is None:
                continue
            expr = d.distance_expr(
                row.expr_for(d.source), row.expr_for(d.target)
            )
            mn = _try_min(rem, expr)
            if mn is None:
                remaining[key] = None  # remaining part is empty
                continue
            if mn is _UNBOUNDED:
                # Negative distances on unordered pairs only arise for
                # hand-built (possibly illegal) schedules; the level
                # certainly reorders/carries the dependence.
                if is_relaxed:
                    relaxed_carried.setdefault(level, []).append(d)
                else:
                    carried = True
                continue
            if mn >= 1:
                if is_relaxed:
                    relaxed_carried.setdefault(level, []).append(d)
                else:
                    carried = True
                remaining[key] = None
                continue
            mx = _try_max(rem, expr)
            if mx is _UNBOUNDED or (mx is not None and mx >= 1):
                # Mixed: some pairs strictly ordered here, some not.
                if is_relaxed:
                    relaxed_carried.setdefault(level, []).append(d)
                else:
                    carried = True
                zero = rem.copy()
                zero.add(Constraint(expr, equality=True))
                remaining[key] = None if zero.is_empty() else zero
            # else distance uniformly zero: not carried, remaining unchanged
        row.parallel = not carried
    return relaxed_carried
