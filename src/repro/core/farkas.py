"""Affine form of the Farkas lemma: from "non-negative on a polyhedron" to
linear constraints on transformation coefficients.

Legality (paper eq. (2)): ``phi_t(t) - phi_s(s) >= 0`` for every point of the
dependence polyhedron ``P``.  By Farkas, an affine form is non-negative on a
(non-empty) polyhedron iff it is a non-negative combination of ``P``'s
constraints plus a non-negative constant:

    phi_t - phi_s  ==  l0 + sum_k l_k * C_k(s, t, p),     l0, l_k >= 0

(equality constraints of ``P`` get sign-free multipliers).  Matching the
coefficient of every product-space dimension, every parameter, and the
constant yields linear *equalities* relating the unknown ``c/d/c0``
coefficients and the multipliers; Fourier–Motzkin elimination of the
multipliers leaves constraints purely over the coefficients, which are added
to the scheduling ILP.

Bounding (eq. (3)) is the same construction applied to
``u.p + w - (phi_t - phi_s)``.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.names import W_NAME, c0_name, c_name, d_name, u_name
from repro.deps.analysis import Dependence
from repro.frontend.ir import Statement
from repro.ilp import LinearConstraint
from repro.polyhedra.fourier_motzkin import (
    eliminate_columns,
    normalize_rows,
    prune_redundant_rows,
)

__all__ = ["farkas_constraints", "legality_constraints", "bounding_constraints"]

# A symbolic affine form over the product space: for each product-space
# column (dims, params, and "1"), a linear combination of unknown coefficient
# variables.  {col: {unknown: int}}
SymbolicForm = dict[str, dict[str, int]]


def _phi_form(stmt: Statement, rename: Mapping[str, str], sign: int) -> SymbolicForm:
    """The symbolic form of ``sign * phi_S`` in the product space."""
    form: SymbolicForm = {}
    for it in stmt.space.dims:
        form.setdefault(rename[it], {})[c_name(stmt, it)] = sign
    for p in stmt.space.params:
        form.setdefault(p, {})[d_name(stmt, p)] = sign
    form.setdefault("1", {})[c0_name(stmt)] = sign
    return form


def _add_form(a: SymbolicForm, b: SymbolicForm) -> SymbolicForm:
    out: SymbolicForm = {k: dict(v) for k, v in a.items()}
    for col, terms in b.items():
        dst = out.setdefault(col, {})
        for name, coef in terms.items():
            dst[name] = dst.get(name, 0) + coef
    return out


def delta_form(dep: Dependence) -> SymbolicForm:
    """``phi_t(t) - phi_s(s)`` as a symbolic form over ``dep``'s space."""
    return _add_form(
        _phi_form(dep.target, dep.tgt_rename, +1),
        _phi_form(dep.source, dep.src_rename, -1),
    )


def bound_minus_delta_form(dep: Dependence) -> SymbolicForm:
    """``u.p + w - (phi_t - phi_s)`` as a symbolic form."""
    neg = _add_form(
        _phi_form(dep.source, dep.src_rename, +1),
        _phi_form(dep.target, dep.tgt_rename, -1),
    )
    bound: SymbolicForm = {"1": {W_NAME: 1}}
    for p in dep.space.params:
        bound.setdefault(p, {})[u_name(p)] = 1
    return _add_form(bound, neg)


def _pruned_polyhedron(dep: Dependence):
    """The dependence polyhedron with redundant rows removed (cached on the
    dependence object).

    Every constraint becomes a Farkas multiplier, and Fourier–Motzkin cost
    grows steeply with the multiplier count, so shrinking the polyhedron to
    its irredundant rows first pays for itself many times over on the large
    workloads (LBM d3q27 after splitting has hundreds of dependences with
    ~25 heavily redundant rows each).  Pruning preserves the rational hull,
    which is exactly the object the affine Farkas lemma reasons over.
    """
    cached = getattr(dep, "_pruned_polyhedron", None)
    if cached is not None:
        return cached
    from repro.polyhedra import AffExpr, BasicSet, Constraint

    poly = dep.polyhedron
    rows = [(con.coeffs, con.equality) for con in poly.constraints]
    pruned = prune_redundant_rows(normalize_rows(rows))
    out = BasicSet(poly.space)
    for coeffs, equality in pruned:
        out.add(Constraint(AffExpr(poly.space, coeffs), equality))
    dep._pruned_polyhedron = out
    return out


def farkas_constraints(dep: Dependence, form: SymbolicForm) -> list[LinearConstraint]:
    """Constraints on the unknowns making ``form`` non-negative on the polyhedron.

    The returned :class:`LinearConstraint` objects reference only unknown
    coefficient variable names (``c.*``, ``d.*``, ``c0.*``, ``u.*``, ``w``).
    """
    poly = _pruned_polyhedron(dep)
    space = poly.space
    cols = list(space.names) + ["1"]

    # Unknown variables appearing in the form.
    unknowns: list[str] = []
    seen = set()
    for terms in form.values():
        for name in terms:
            if name not in seen:
                seen.add(name)
                unknowns.append(name)

    lambdas = [f"~l{k}" for k in range(len(poly.constraints))]
    lambda0 = "~l_const"
    all_cols = unknowns + lambdas + [lambda0]  # + implicit const (always 0 here)
    col_index = {name: i for i, name in enumerate(all_cols)}
    width = len(all_cols) + 1  # + const column

    rows: list[tuple[tuple[int, ...], bool]] = []

    # One equality per product-space column: form[col] - sum_k l_k C_k[col]
    # ( - l0 for the constant column ) == 0.
    for ci, col in enumerate(cols):
        row = [0] * width
        for name, coef in form.get(col, {}).items():
            row[col_index[name]] += coef
        for k, con in enumerate(poly.constraints):
            coeff = con.coeffs[ci] if ci < len(con.coeffs) else 0
            if col == "1":
                coeff = con.coeffs[-1]
            row[col_index[lambdas[k]]] -= coeff
        if col == "1":
            row[col_index[lambda0]] -= 1
        rows.append((tuple(row), True))

    # Multiplier sign constraints: l_k >= 0 for inequalities, l0 >= 0.
    for k, con in enumerate(poly.constraints):
        if not con.equality:
            row = [0] * width
            row[col_index[lambdas[k]]] = 1
            rows.append((tuple(row), False))
    row = [0] * width
    row[col_index[lambda0]] = 1
    rows.append((tuple(row), False))

    # Eliminate all multipliers; prune redundant intermediate rows so the
    # FM cascade stays small (safe here: pruning preserves the rational set,
    # and the final constraints are over coefficients the verifier and the
    # validation harness independently check).
    elim_cols = [col_index[l] for l in lambdas] + [col_index[lambda0]]
    reduced = eliminate_columns(normalize_rows(rows), elim_cols, prune_threshold=80)

    out: list[LinearConstraint] = []
    for coeffs, equality in reduced:
        terms = {
            name: coeffs[col_index[name]]
            for name in unknowns
            if coeffs[col_index[name]] != 0
        }
        const = coeffs[-1]
        if not terms:
            if (equality and const != 0) or (not equality and const < 0):
                # Contradiction: the form cannot be non-negative on P.  Keep
                # it so the ILP becomes infeasible (callers rely on this).
                out.append(LinearConstraint({}, const, equality, label="farkas-infeasible"))
            continue
        out.append(LinearConstraint(terms, const, equality, label="farkas"))
    return out


def legality_constraints(dep: Dependence) -> list[LinearConstraint]:
    """Eq. (2): ``phi_t - phi_s >= 0`` on the dependence polyhedron."""
    return farkas_constraints(dep, delta_form(dep))


def bounding_constraints(dep: Dependence) -> list[LinearConstraint]:
    """Eq. (3): ``phi_t - phi_s <= u.p + w`` on the dependence polyhedron."""
    return farkas_constraints(dep, bound_minus_delta_form(dep))
