"""Band tiling: rectangular tiles over permutable bands.

Tiling a band of ``k`` permutable levels inserts ``k`` *tile* dimensions
immediately before the band; tile dimension ``T`` for level expression
``phi`` satisfies ``ts*T <= phi <= ts*T + ts - 1``.  Because every level in
the band has non-negative dependence components (the scheduler construction),
executing tiles atomically in lexicographic order is legal — the classic
validity argument of the Pluto paper.

The result is a :class:`TiledSchedule` whose rows extend the base schedule
rows with ``kind == "tile"`` entries; the code generator scans them exactly
like loop rows but with inequality (rather than equality) binding
constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.transform import Band, Schedule, ScheduleRow
from repro.frontend.ir import Program

__all__ = [
    "DEFAULT_TILE_SIZE",
    "TiledRow",
    "TiledSchedule",
    "l2_tile_schedule",
    "optimize_intra_tile",
    "tile_schedule",
    "untiled_schedule",
]

DEFAULT_TILE_SIZE = 32


@dataclass
class TiledRow:
    """One dimension of the final scanning order.

    ``kind``: ``"loop"`` (equality ``z == phi``), ``"scalar"`` (constant), or
    ``"tile"`` (``ts*z <= phi <= ts*z + ts - 1``).  ``parallel`` flags carry
    over from hyperplane properties scheduler-side; tile rows are always
    sequential (see :func:`tile_schedule` — a hyperplane that carries no
    dependence pointwise can still be carried at tile granularity).
    """

    kind: str
    exprs: dict[str, object]       # stmt name -> AffExpr
    tile_size: Optional[int] = None
    parallel: Optional[bool] = None
    band_role: str = ""            # "tile" | "point" | "" for bookkeeping
    #: relaxed-reduction tags carried over from the source ScheduleRow
    #: (None unless parallel_reductions is enabled; see ScheduleRow)
    reduction: Optional[list] = None

    def expr_for(self, stmt) -> object:
        name = stmt if isinstance(stmt, str) else stmt.name
        return self.exprs[name]


@dataclass
class TiledSchedule:
    """The scanning order handed to the code generator."""

    program: Program
    rows: list[TiledRow] = field(default_factory=list)
    bands: list[Band] = field(default_factory=list)     # over *row* indices
    source_schedule: Optional[Schedule] = None

    @property
    def depth(self) -> int:
        return len(self.rows)

    def parallel_levels(self) -> list[int]:
        return [i for i, r in enumerate(self.rows) if r.parallel]

    def tile_levels(self) -> list[int]:
        return [i for i, r in enumerate(self.rows) if r.kind == "tile"]

    def reduction_levels(self) -> list[int]:
        """Row indices whose parallelism rests on reduction relaxation."""
        return [i for i, r in enumerate(self.rows) if r.reduction]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form, the :meth:`Schedule.to_dict` twin."""
        # "reduction" appears only on tagged rows (the ScheduleRow rule):
        # default-path records keep their exact historical byte shape.
        return {
            "program": self.program.name,
            "rows": [
                {
                    "kind": row.kind,
                    "tile_size": row.tile_size,
                    "parallel": row.parallel,
                    "band_role": row.band_role,
                    "exprs": {
                        name: list(expr.coeffs)
                        for name, expr in row.exprs.items()
                    },
                    **(
                        {"reduction": row.reduction}
                        if row.reduction
                        else {}
                    ),
                }
                for row in self.rows
            ],
            "bands": [
                {
                    "start": b.start,
                    "end": b.end,
                    "permutable": b.permutable,
                    "concurrent_start": b.concurrent_start,
                }
                for b in self.bands
            ],
            "source_schedule": (
                None
                if self.source_schedule is None
                else self.source_schedule.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, program: Program, data: dict) -> "TiledSchedule":
        """Rebuild a tiled schedule exported by :meth:`to_dict`."""
        if data.get("program") != program.name:
            raise ValueError(
                f"tiled schedule was exported for {data.get('program')!r}, "
                f"not {program.name!r}"
            )
        from repro.polyhedra import AffExpr

        out = cls(program)
        for rd in data["rows"]:
            exprs = {
                name: AffExpr(program.statement(name).space, coeffs)
                for name, coeffs in rd["exprs"].items()
            }
            out.rows.append(
                TiledRow(
                    rd["kind"],
                    exprs,
                    tile_size=rd["tile_size"],
                    parallel=rd["parallel"],
                    band_role=rd["band_role"],
                    reduction=rd.get("reduction"),
                )
            )
        out.bands = [
            Band(b["start"], b["end"], b["permutable"], b["concurrent_start"])
            for b in data.get("bands", [])
        ]
        src = data.get("source_schedule")
        if src is not None:
            out.source_schedule = Schedule.from_dict(program, src)
        return out


def _as_tiled_row(row: ScheduleRow) -> TiledRow:
    return TiledRow(
        row.kind,
        dict(row.exprs),
        parallel=row.parallel,
        reduction=getattr(row, "reduction", None),
    )


def tile_schedule(
    sched: Schedule,
    tile_size: int | dict[int, int] = DEFAULT_TILE_SIZE,
    min_band_width: int = 2,
) -> TiledSchedule:
    """Tile every permutable band of width >= ``min_band_width``.

    ``tile_size`` may be a single size or a per-band mapping (band index ->
    size).  Tile dimensions are never marked parallel — not even for
    ``concurrent_start`` (diamond) bands.  A diamond band's hyperplanes are
    each non-negative on every dependence, but neither is carried-free at
    tile granularity: a dependence can advance ``h1`` across a tile
    boundary while ``floor((h1+h2)/ts)`` stays put, so annotating the
    first tile loop parallel races under real threads (caught by the
    ``exec_threads`` bit-compat gate).  True concurrent start needs a
    wavefront over the *tile indices* (``z1+z2`` sequential, ``z1``
    parallel), which the scan cannot express yet — the band keeps its
    ``concurrent_start`` flag for the analytic machine layer, and point
    rows keep whatever parallel marks the scheduler proved.
    """
    out = TiledSchedule(sched.program, source_schedule=sched)
    sizes = tile_size if isinstance(tile_size, dict) else None

    bands_sorted = sorted(sched.bands, key=lambda b: b.start)
    band_iter = iter(bands_sorted)
    next_band = next(band_iter, None)
    level = 0
    band_counter = 0
    while level < sched.depth:
        if (
            next_band is not None
            and level == next_band.start
            and next_band.permutable
            and next_band.width >= min_band_width
        ):
            ts = (
                sizes.get(band_counter, DEFAULT_TILE_SIZE)
                if sizes is not None
                else tile_size
            )
            tile_start = len(out.rows)
            for lv in next_band.levels():
                src = sched.rows[lv]
                out.rows.append(
                    TiledRow(
                        "tile",
                        dict(src.exprs),
                        tile_size=ts,
                        parallel=False,
                        band_role="tile",
                    )
                )
            point_start = len(out.rows)
            for lv in next_band.levels():
                r = _as_tiled_row(sched.rows[lv])
                r.band_role = "point"
                out.rows.append(r)
            out.bands.append(
                Band(
                    tile_start,
                    point_start - 1,
                    permutable=True,
                    concurrent_start=next_band.concurrent_start,
                )
            )
            out.bands.append(
                Band(
                    point_start,
                    len(out.rows) - 1,
                    permutable=True,
                    concurrent_start=next_band.concurrent_start,
                )
            )
            level = next_band.end + 1
            next_band = next(band_iter, None)
            band_counter += 1
            continue
        if next_band is not None and level == next_band.start:
            # untiled band (too narrow): copy rows through
            start = len(out.rows)
            for lv in next_band.levels():
                out.rows.append(_as_tiled_row(sched.rows[lv]))
            out.bands.append(
                Band(start, len(out.rows) - 1, permutable=next_band.permutable)
            )
            level = next_band.end + 1
            next_band = next(band_iter, None)
            band_counter += 1
            continue
        out.rows.append(_as_tiled_row(sched.rows[level]))
        level += 1
    return out


def untiled_schedule(sched: Schedule) -> TiledSchedule:
    """A :class:`TiledSchedule` that simply mirrors ``sched`` (no tiling)."""
    out = TiledSchedule(sched.program, source_schedule=sched)
    out.rows = [_as_tiled_row(r) for r in sched.rows]
    out.bands = [
        Band(b.start, b.end, b.permutable, b.concurrent_start)
        for b in sched.bands
    ]
    return out


def l2_tile_schedule(tsched: TiledSchedule, ratio: int = 8) -> TiledSchedule:
    """Second-level tiling (Pluto's ``--l2tile``): wrap every first-level
    tile band in an outer band of tiles ``ratio`` times larger.

    The L2 tile dimension for a tile row with size ``ts`` satisfies
    ``ts*ratio*Z <= phi <= ts*ratio*Z + ts*ratio - 1`` — the same inequality
    shape the code generator already scans, so no new machinery is needed.
    """
    if ratio < 2:
        raise ValueError("l2 ratio must be >= 2")
    out = TiledSchedule(tsched.program, source_schedule=tsched.source_schedule)
    i = 0
    while i < len(tsched.rows):
        row = tsched.rows[i]
        band = next(
            (b for b in tsched.bands if b.start == i and tsched.rows[b.start].kind == "tile"
             and all(tsched.rows[l].kind == "tile" for l in b.levels())),
            None,
        )
        if band is None:
            out.rows.append(row)
            i += 1
            continue
        l2_start = len(out.rows)
        for lv in band.levels():
            src = tsched.rows[lv]
            out.rows.append(
                TiledRow(
                    "tile",
                    dict(src.exprs),
                    tile_size=src.tile_size * ratio,
                    parallel=src.parallel,
                    band_role="l2-tile",
                )
            )
        out.bands.append(
            Band(l2_start, len(out.rows) - 1, permutable=True,
                 concurrent_start=band.concurrent_start)
        )
        l1_start = len(out.rows)
        for lv in band.levels():
            out.rows.append(tsched.rows[lv])
        out.bands.append(
            Band(l1_start, len(out.rows) - 1, permutable=True,
                 concurrent_start=band.concurrent_start)
        )
        i = band.end + 1
    # copy through the remaining (non-tile) bands with shifted indices
    offset = len(out.rows) - len(tsched.rows)
    for b in tsched.bands:
        if tsched.rows[b.start].kind != "tile":
            out.bands.append(
                Band(b.start + offset, b.end + offset, b.permutable, b.concurrent_start)
            )
    return out


def optimize_intra_tile(tsched: TiledSchedule) -> TiledSchedule:
    """Post-transformation intra-tile optimization (the paper's "Misc" pass):
    within each permutable *point* band, rotate a parallel level innermost so
    the innermost loop vectorizes.  Permutability makes any order legal.
    """
    out = TiledSchedule(tsched.program, source_schedule=tsched.source_schedule)
    out.rows = list(tsched.rows)
    out.bands = [
        Band(b.start, b.end, b.permutable, b.concurrent_start)
        for b in tsched.bands
    ]
    for band in out.bands:
        if not band.permutable or band.width < 2:
            continue
        levels = list(band.levels())
        if any(out.rows[l].kind != "loop" for l in levels):
            continue
        innermost = levels[-1]
        if out.rows[innermost].parallel:
            continue
        parallel = [l for l in levels if out.rows[l].parallel]
        if not parallel:
            continue
        chosen = parallel[-1]
        row = out.rows.pop(chosen)
        out.rows.insert(innermost, row)
    return out
