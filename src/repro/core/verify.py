"""Independent legality verification of schedules.

A :class:`Schedule` is legal iff every dependence is respected: for each
dependence, every instance pair must be mapped to lexicographically
increasing time vectors.  The checker below is deliberately independent of
the scheduler's own bookkeeping (no Farkas, no satisfaction levels): it
walks the schedule level by level, shrinking each dependence's "not yet
ordered" polyhedron exactly, and reports any pair ordered backwards.

Used by tests, by the diamond-tiling fallback logic, and as a user-facing
sanity tool (``repro.cli verify``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.core.tiling import TiledSchedule
from repro.core.transform import Schedule
from repro.deps.analysis import Dependence
from repro.deps.ddg import DependenceGraph
from repro.polyhedra import BasicSet, Constraint

__all__ = ["VerificationReport", "verify_schedule"]


@dataclass
class Violation:
    dependence: Dependence
    level: int
    witness: Optional[dict] = None

    def __str__(self) -> str:
        return f"{self.dependence} ordered backwards at level {self.level}"


@dataclass
class VerificationReport:
    legal: bool
    violations: list[Violation] = field(default_factory=list)
    unordered: list[Dependence] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.legal

    def __str__(self) -> str:
        if self.legal:
            return "schedule is legal (all dependences strictly ordered)"
        lines = ["schedule is ILLEGAL:"]
        lines += [f"  {v}" for v in self.violations[:10]]
        lines += [f"  unordered: {d}" for d in self.unordered[:10]]
        return "\n".join(lines)


def _rows_of(sched: Union[Schedule, TiledSchedule]):
    return sched.rows


def verify_schedule(
    sched: Union[Schedule, TiledSchedule],
    ddg: DependenceGraph,
    require_total_order: bool = True,
) -> VerificationReport:
    """Exactly verify that ``sched`` respects every dependence of ``ddg``.

    Tile rows are ignored for ordering purposes (they coarsen the point
    rows that follow; legality of tiling itself follows from band
    permutability, which the point rows establish here because tile rows of
    a legal band never order pairs backwards that the point rows order
    forwards).  With ``require_total_order`` every dependence must be
    *strictly* ordered by some level; otherwise weak order suffices.
    """
    violations: list[Violation] = []
    unordered: list[Dependence] = []

    for dep in ddg.deps:
        remaining: Optional[BasicSet] = dep.polyhedron
        for level, row in enumerate(_rows_of(sched)):
            if remaining is None:
                break
            if getattr(row, "kind", "loop") == "tile":
                continue
            if row.kind == "scalar":
                src_pos = row.expr_for(dep.source).const_term
                tgt_pos = row.expr_for(dep.target).const_term
                if src_pos < tgt_pos:
                    remaining = None
                elif src_pos > tgt_pos:
                    violations.append(Violation(dep, level))
                    remaining = None
                continue
            expr = dep.distance_expr(
                row.expr_for(dep.source), row.expr_for(dep.target)
            )
            try:
                mn = remaining.min_of(expr)
            except ValueError:
                mn = None  # unbounded below: a negative witness exists
                violations.append(Violation(dep, level))
                remaining = None
                continue
            if mn is None:
                remaining = None  # nothing left to order
                continue
            if mn < 0:
                witness_set = remaining.copy()
                witness_set.add(Constraint(-expr - 1))
                violations.append(
                    Violation(dep, level, witness_set.sample_point())
                )
                remaining = None
                continue
            if mn >= 1:
                remaining = None  # every remaining pair strictly ordered
            else:
                # min == 0: pairs at distance >= 1 are ordered; the worst
                # pairs sit at exactly 0 and pass to deeper levels
                zero = remaining.copy()
                zero.add(Constraint(expr, equality=True))
                remaining = zero
        else:
            if remaining is not None and require_total_order:
                if not remaining.is_empty():
                    unordered.append(dep)

    legal = not violations and not unordered
    return VerificationReport(legal, violations, unordered)
