"""Diamond tiling: tiling bands with concurrent start (Bandishti et al. [2]).

For time-iterated stencils the standard Pluto band (e.g. ``(t, 2t+i)``)
yields tiles with pipelined startup; diamond tiling instead picks band
hyperplanes whose *sum* is parallel to the time face ``f`` (e.g. ``(t+i,
t-i)``), so all tiles along the first tile dimension can start concurrently
(Fig. 4f-g).  The paper enables this as ``--partlbtile`` for the periodic
benchmarks; after index-set splitting, finding the required hyperplanes for
the reversed half needs Pluto+'s negative coefficients — classic Pluto's ILP
is infeasible here, which is exactly why it cannot time-tile periodic
stencils (Table 3, lower half; Fig. 6).

Procedure (the [2] construction, specialized per this paper's usage):

1. identify the concurrent-start face ``f`` = the common time iterator;
2. find ``n-1`` hyperplanes by the usual Pluto/Pluto+ ILP with extra
   constraints: distances bounded by a constant (``u = 0``), ``c_t >= 1``,
   and a non-zero space component;
3. complete the band with ``h_n = k*f - sum(h_i)`` for the smallest ``k``
   making ``h_n`` legal (checked exactly against every dependence);
4. order same-iteration statement pairs with a trailing scalar dimension.

Returns ``None`` whenever any step fails; callers fall back to the standard
band search.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.names import W_NAME, c0_name, c_name, d_name, u_name
from repro.core.scheduler import PlutoScheduler, SchedulerOptions, SchedulerStats
from repro.core.transform import Band, Schedule, ScheduleRow
from repro.deps.ddg import DependenceGraph
from repro.frontend.ir import Program
from repro.ilp import LinearConstraint, lexmin
from repro.polyhedra import AffExpr, Constraint

__all__ = ["find_diamond_schedule"]


def _common_time_iterator(program: Program) -> Optional[str]:
    """The shared outermost iterator, required in every statement."""
    iters = [s.space.dims for s in program.statements]
    if not iters or not all(dims for dims in iters):
        return None
    first = iters[0][0]
    if all(dims[0] == first for dims in iters):
        return first
    return None


def find_diamond_schedule(
    program: Program,
    ddg: DependenceGraph,
    options: Optional[SchedulerOptions] = None,
    stats: Optional[SchedulerStats] = None,
    warm=None,
) -> Optional[Schedule]:
    """Search for a full-depth diamond band; ``None`` if not applicable.

    When ``stats`` is given, solver counters from the internal scheduler
    accumulate into it (the pipeline's ``--stats`` plumbing).  ``warm`` is
    an optional cross-request replay context
    (:class:`repro.core.skeleton.WarmStart`); the constrained per-level
    solves participate under their own solve-key tag, so diamond and
    standard-band records never collide.
    """
    options = options or SchedulerOptions()
    time_iter = _common_time_iterator(program)
    if time_iter is None:
        return None
    ndim = program.statements[0].dim
    if any(s.dim != ndim for s in program.statements) or ndim < 2:
        return None

    scheduler = PlutoScheduler(program, ddg, options, warm=warm)
    if stats is not None:
        scheduler.stats = stats
    ddg.reset()
    sched = Schedule(program)
    active = list(ddg.deps)

    for _ in range(ndim - 1):
        row = _find_constrained_hyperplane(scheduler, sched, active, time_iter)
        if row is None:
            return None
        sched.add_row(row)
        scheduler._update_ranks(sched)

    last = _complete_band(program, ddg, sched, time_iter, ndim)
    if last is None:
        return None
    sched.add_row(last)
    scheduler._update_ranks(sched)
    if not scheduler._all_full_rank(sched):
        return None

    # Replay satisfaction over the diamond rows.
    ddg.reset()
    scheduler._remaining = {id(d): d.polyhedron for d in ddg.deps}
    for level in range(sched.depth):
        scheduler._update_satisfaction(sched, level)
    sched.bands.append(Band(0, sched.depth - 1, permutable=True, concurrent_start=True))

    if ddg.unsatisfied():
        # Same-iteration inter-statement deps: order by original position.
        positions = {s.name: i for i, s in enumerate(program.statements)}
        ok = all(
            positions[d.source.name] < positions[d.target.name]
            for d in ddg.unsatisfied()
        )
        if not ok:
            return None
        sched.add_scalar_row(positions)
        for d in ddg.unsatisfied():
            d.satisfied_by_cut = True
    else:
        scheduler._finalize_order(sched)
    return sched


def _find_constrained_hyperplane(
    scheduler: PlutoScheduler,
    sched: Schedule,
    active: Sequence,
    time_iter: str,
) -> Optional[ScheduleRow]:
    """One band hyperplane with the concurrent-start side constraints."""
    program = scheduler.program
    skey = None
    if scheduler.warm is not None:
        # The side constraints below are fully determined by the model
        # inputs plus (time_iter); the "diamond" tag keeps these records
        # apart from the standard band search over the same state.
        skey = scheduler._solve_key(sched, active, extra=["diamond", time_iter])
        record = scheduler.warm.lookup(skey)
        if record is not None:
            try:
                row = scheduler._replay_row(record)
            except (KeyError, ValueError, TypeError):
                scheduler.warm.forget(skey)  # poisoned record: solve cold
            else:
                scheduler.warm.hits += 1
                scheduler.stats.structural_warm_start += 1
                scheduler.stats.solve.structural_warm_start += 1
                return row
        scheduler.warm.misses += 1
    model = scheduler.build_model(sched, active)
    # distances bounded by a constant: u = 0
    for p in program.params:
        model.add_constraint({u_name(p): -1}, 0)  # u <= 0 (u >= 0 by bounds)
    plus = scheduler.options.algorithm == "plutoplus"
    b = scheduler.options.coeff_bound
    for s in program.statements:
        # time coefficient strictly positive: h . f >= 1
        model.add_constraint({c_name(s, time_iter): 1}, -1)
        # non-zero space component (not parallel to the face).  For Pluto+
        # reuse the radix trick over the space dims; classic Pluto's space
        # coefficients are non-negative so their sum >= 1 suffices.
        space_dims = [d for d in s.space.dims if d != time_iter]
        if not space_dims:
            return None
        if plus:
            radix = b + 1
            big_m = radix ** len(space_dims)
            var = f"ds.{s.name}"
            model.add_variable(var, lower=0, upper=1)
            combo = {}
            weight = 1
            for d in space_dims:
                combo[c_name(s, d)] = weight
                weight *= radix
            pos = dict(combo)
            pos[var] = big_m
            model.add_constraint(pos, -1)
            neg = {k: -v for k, v in combo.items()}
            neg[var] = -big_m
            model.add_constraint(neg, big_m - 1)
        else:
            model.add_constraint({c_name(s, d): 1 for d in space_dims}, -1)
    t0 = time.perf_counter()
    result = lexmin(
        model,
        backend=scheduler.options.ilp_backend,
        auto_threshold=scheduler.options.auto_threshold,
    )
    dt = time.perf_counter() - t0
    scheduler.stats.ilp_solves += result.solves
    scheduler.stats.backends_used.add(result.backend)
    scheduler.stats.solve_seconds += dt
    scheduler.stats.solve.merge(result.stats)
    scheduler.stats.solve.solve_seconds += dt
    if scheduler.warm is not None:
        scheduler._record_solve(skey, result)
    if not result.is_optimal:
        return None
    exprs = {}
    for s in program.statements:
        terms = {it: int(result.assignment[c_name(s, it)]) for it in s.space.dims}
        for p in s.space.params:
            terms[p] = int(result.assignment[d_name(s, p)])
        exprs[s.name] = AffExpr.from_terms(
            s.space, terms, int(result.assignment[c0_name(s)])
        )
    return ScheduleRow("loop", exprs)


def _complete_band(
    program: Program,
    ddg: DependenceGraph,
    sched: Schedule,
    time_iter: str,
    ndim: int,
) -> Optional[ScheduleRow]:
    """``h_n = k*f - sum(h_i)``, smallest legal ``k`` (checked exactly)."""
    for k in range(1, 4 * ndim + 1):
        exprs = {}
        for s in program.statements:
            acc = AffExpr.var(s.space, time_iter) * k
            for row in sched.rows:
                acc = acc - row.expr_for(s)
            exprs[s.name] = acc
        if all(not e.terms() for e in exprs.values()):
            continue  # degenerate (parallel to existing rows)
        row = ScheduleRow("loop", exprs)
        if _row_is_legal(ddg, row) and _row_independent(program, sched, row):
            return row
    return None


def _row_is_legal(ddg: DependenceGraph, row: ScheduleRow) -> bool:
    for d in ddg.deps:
        mn = None
        try:
            mn = d.min_distance(row.expr_for(d.source), row.expr_for(d.target))
        except ValueError:
            return False
        if mn is not None and mn < 0:
            return False
    return True


def _row_independent(program: Program, sched: Schedule, row: ScheduleRow) -> bool:
    from repro.linalg import FMatrix

    for s in program.statements:
        rows = sched.h_rows(s)
        cand = [row.expr_for(s).coeff_of(d) for d in s.space.dims]
        if not any(cand):
            return False
        if rows and FMatrix(rows + [cand]).rank() != len(rows) + 1:
            return False
    return True
