"""The paper's contribution: Pluto / Pluto+ affine scheduling and friends."""

from repro.core.diamond import find_diamond_schedule
from repro.core.farkas import (
    bounding_constraints,
    farkas_constraints,
    legality_constraints,
)
from repro.core.iss import index_set_split, long_dependence_dims, needs_iss
from repro.core.names import (
    W_NAME,
    c0_name,
    c_name,
    csum_name,
    d_name,
    delta_name,
    deltal_name,
    u_name,
)
from repro.core.ortho import (
    orthogonal_basis_rows,
    orthogonal_projector_rows,
    pluto_independence_constraints,
    plutoplus_independence_constraints,
    plutoplus_nonzero_constraints,
)
from repro.core.properties import mark_parallelism
from repro.core.scheduler import (
    DEFAULT_COEFF_BOUND,
    PlutoScheduler,
    SchedulerError,
    SchedulerOptions,
    SchedulerStats,
)
from repro.core.tiling import (
    DEFAULT_TILE_SIZE,
    TiledRow,
    TiledSchedule,
    l2_tile_schedule,
    optimize_intra_tile,
    tile_schedule,
    untiled_schedule,
)
from repro.core.transform import Band, Schedule, ScheduleRow
from repro.core.verify import VerificationReport, verify_schedule

__all__ = [
    "Band",
    "DEFAULT_COEFF_BOUND",
    "DEFAULT_TILE_SIZE",
    "PlutoScheduler",
    "Schedule",
    "ScheduleRow",
    "SchedulerError",
    "SchedulerOptions",
    "SchedulerStats",
    "TiledRow",
    "TiledSchedule",
    "W_NAME",
    "bounding_constraints",
    "c0_name",
    "c_name",
    "csum_name",
    "d_name",
    "delta_name",
    "deltal_name",
    "farkas_constraints",
    "find_diamond_schedule",
    "index_set_split",
    "legality_constraints",
    "long_dependence_dims",
    "mark_parallelism",
    "needs_iss",
    "orthogonal_basis_rows",
    "orthogonal_projector_rows",
    "pluto_independence_constraints",
    "plutoplus_independence_constraints",
    "plutoplus_nonzero_constraints",
    "tile_schedule",
    "u_name",
    "untiled_schedule",
    "l2_tile_schedule",
    "optimize_intra_tile",
    "VerificationReport",
    "verify_schedule",
]
