"""The iterative Pluto / Pluto+ scheduling algorithm (Sections 3.2–3.8).

Level by level, one ILP per level, the scheduler searches for hyperplanes
``phi_S`` that are

* legal — eq. (2) holds for every dependence still *active* (not satisfied
  before the current band started; keeping in-band-satisfied dependences
  active is what makes the found bands fully permutable and hence tilable);
* bounded — eq. (3) ties every active dependence distance below ``u.p + w``;
* linearly independent of the hyperplanes already found, for every statement
  whose transformation is not yet full column rank;

and minimizes objective (4) (classic) or (8) (Pluto+) as a ``lexmin``.

When no hyperplane exists the current band is closed; dependences satisfied
inside it retire from the active set, and if the remaining DDG splits into
several SCCs a scalar dimension orders them (an SCC "cut", Pluto's fusion
structure).  The loop ends when every dependence is satisfied and every
statement's transformation is one-to-one.

Algorithm selection:

* ``"pluto"``   — classic trade-off: ``c_i >= 0``, ``sum c_i >= 1``,
  non-negative orthant of the orthogonal sub-space;
* ``"plutoplus"`` — the paper's contribution: ``-b <= c_i <= b`` with
  radix-encoded zero-avoidance and linear independence (one binary each) and
  the ``c_sum`` smallest-coefficient objective.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from repro.core.farkas import bounding_constraints, legality_constraints
from repro.core.names import (
    W_NAME,
    c0_name,
    c_name,
    csum_name,
    d_name,
    delta_name,
    deltal_name,
    u_name,
)
from repro.core.ortho import (
    pluto_independence_constraints,
    plutoplus_independence_constraints,
    plutoplus_nonzero_constraints,
)
from repro.core.transform import Band, Schedule, ScheduleRow
from repro.deps.analysis import Dependence
from repro.deps.ddg import DependenceGraph
from repro.frontend.ir import Program, Statement
from repro.ilp import ILPModel, LinearConstraint, SolveStats, legacy_exact_mode, lexmin
from repro.linalg import FMatrix
from repro.polyhedra import AffExpr, Constraint
from repro.polyhedra.fourier_motzkin import normalize_row

__all__ = ["SchedulerOptions", "SchedulerError", "PlutoScheduler", "SchedulerStats"]

DEFAULT_COEFF_BOUND = 4  # the paper's b (Section 3.3 uses b = 4)


class SchedulerError(RuntimeError):
    pass


@dataclass
class SchedulerOptions:
    algorithm: str = "plutoplus"          # "pluto" | "plutoplus"
    coeff_bound: int = DEFAULT_COEFF_BOUND
    #: "highs" by default: the pure-Python exact simplex (the PIP-role
    #: backend, kept correct and property-tested against HiGHS) costs seconds
    #: per LP at scheduler model sizes, so the production path uses HiGHS
    #: with exact verification of the rounded solutions.
    ilp_backend: str = "highs"            # "exact" | "highs" | "auto"
    auto_threshold: int = 25              # auto mode: exact below, HiGHS above
    max_levels: int = 32                  # safety valve
    #: Section 3.6 smallest-coefficients objective; disabled only by the
    #: csum ablation bench.
    csum_objective: bool = True
    #: Fusion structure (Pluto's --fuse): "max" fuses as long as a common
    #: hyperplane exists; "no" distributes SCCs with a scalar dimension
    #: before every search; "smart" (default) first separates SCCs of
    #: different dimensionality (Pluto's dimensionality-based cut), then
    #: behaves like "max".
    fuse: str = "smart"

    def __post_init__(self) -> None:
        if self.algorithm not in ("pluto", "plutoplus"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.coeff_bound < 1:
            raise ValueError("coeff_bound must be >= 1")
        if self.fuse not in ("smart", "max", "no"):
            raise ValueError(f"unknown fusion policy {self.fuse!r}")


@dataclass
class SchedulerStats:
    ilp_solves: int = 0
    ilp_variables_max: int = 0
    hyperplanes_found: int = 0
    cuts: int = 0
    #: satisfaction queries answered by batching (identical remaining
    #: polyhedron + distance expression shared with another dependence)
    sat_batched: int = 0
    solve_seconds: float = 0.0
    backends_used: set = field(default_factory=set)
    #: aggregated solver counters (pivots, B&B nodes, warm-start hits,
    #: dedup savings, ...) across every lexmin issued by this scheduler
    solve: SolveStats = field(default_factory=SolveStats)
    #: which scheduler was requested ("exact" | "quick" | "auto") and which
    #: path produced the final schedule ("exact" | "quick" | "fallback");
    #: when the quick-permutation heuristic was bypassed or lost,
    #: ``fallback_reason`` says why ("diamond-requested" |
    #: "no-legal-permutation" | "untilable-band")
    scheduler_mode: str = "exact"
    scheduler_path: str = "exact"
    fallback_reason: Optional[str] = None
    #: quick-path counters: candidate rows proposed, exact per-dependence
    #: legality minima computed, and wall time inside the candidate search
    quick_candidates: int = 0
    quick_validations: int = 0
    quick_seconds: float = 0.0
    #: per-statement fusion decisions of the winning schedule: statement
    #: names grouped by shared scalar (SCC-ordering) coordinates
    fusion_groups: list = field(default_factory=list)
    #: cross-request skeleton reuse (``repro.core.skeleton``): how many
    #: per-level solves were answered by replaying a recorded solution,
    #: and the request-level verdict — ``None`` (store disabled), "miss"
    #: (no prior record), "hit" (every solve replayed), or "fallback"
    #: (record existed but some level had to be solved cold)
    structural_warm_start: int = 0
    structural_path: Optional[str] = None
    #: reduction relaxation (``repro.core.reductions``): accumulation
    #: statements detected in the program and the self-dependences dropped
    #: from the legality set before scheduling.  Both stay zero unless
    #: ``PipelineOptions.parallel_reductions`` is enabled.
    reductions_detected: int = 0
    reductions_relaxed: int = 0

    def as_dict(self) -> dict:
        """JSON-serializable form (suite manifests, ``--stats`` plumbing)."""
        out = {
            "ilp_solves": self.ilp_solves,
            "ilp_variables_max": self.ilp_variables_max,
            "hyperplanes_found": self.hyperplanes_found,
            "cuts": self.cuts,
            "sat_batched": self.sat_batched,
            "solve_seconds": self.solve_seconds,
            "backends_used": sorted(self.backends_used),
            "solve": self.solve.as_dict(),
            "scheduler_mode": self.scheduler_mode,
            "scheduler_path": self.scheduler_path,
            "fallback_reason": self.fallback_reason,
            "quick_candidates": self.quick_candidates,
            "quick_validations": self.quick_validations,
            "quick_seconds": self.quick_seconds,
            "fusion_groups": [list(g) for g in self.fusion_groups],
            "structural_warm_start": self.structural_warm_start,
            "structural_path": self.structural_path,
        }
        # Omitted at zero so stats recorded with the reductions subsystem
        # off stay byte-identical to the pre-reduction format.
        if self.reductions_detected or self.reductions_relaxed:
            out["reductions_detected"] = self.reductions_detected
            out["reductions_relaxed"] = self.reductions_relaxed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SchedulerStats":
        return cls(
            ilp_solves=data["ilp_solves"],
            ilp_variables_max=data["ilp_variables_max"],
            hyperplanes_found=data["hyperplanes_found"],
            cuts=data["cuts"],
            sat_batched=data["sat_batched"],
            solve_seconds=data["solve_seconds"],
            backends_used=set(data["backends_used"]),
            solve=SolveStats.from_dict(data["solve"]),
            # quick-scheduler fields postdate the format; default for
            # records written by older pipelines
            scheduler_mode=data.get("scheduler_mode", "exact"),
            scheduler_path=data.get("scheduler_path", "exact"),
            fallback_reason=data.get("fallback_reason"),
            quick_candidates=data.get("quick_candidates", 0),
            quick_validations=data.get("quick_validations", 0),
            quick_seconds=data.get("quick_seconds", 0.0),
            fusion_groups=[list(g) for g in data.get("fusion_groups", [])],
            # structural warm-start fields postdate the format as well
            structural_warm_start=data.get("structural_warm_start", 0),
            structural_path=data.get("structural_path"),
            # reduction-relaxation fields postdate the format too
            reductions_detected=data.get("reductions_detected", 0),
            reductions_relaxed=data.get("reductions_relaxed", 0),
        )


class PlutoScheduler:
    def __init__(
        self,
        program: Program,
        ddg: DependenceGraph,
        options: Optional[SchedulerOptions] = None,
        warm=None,
        rar: Sequence[Dependence] = (),
    ):
        self.program = program
        self.ddg = ddg
        self.options = options or SchedulerOptions()
        self.stats = SchedulerStats()
        # RAR (read-reuse) relations: locality signal only.  Their Farkas
        # *bounding* rows join every per-band model so the lexmin objective
        # pulls read-read reuse distances down alongside the real
        # dependence distances; their legality rows are never generated, so
        # they cannot constrain which schedules are feasible.
        self.rar = list(rar)
        self._rar_bound_cache: dict[int, list] = {}
        # Cross-request replay context (repro.core.skeleton.WarmStart).
        # Disabled under REPRO_EXACT_LEGACY: the seed-reproduction mode
        # must not take any fast path, even a provably identical one.
        self.warm = warm if (warm is not None and not legacy_exact_mode()) else None
        # Lazily computed Farkas constraints per dependence (they do not
        # depend on the level, so one elimination serves the whole run).
        self._farkas_cache: dict[int, tuple[list, list]] = {}
        # Model skeletons (variables + csum + Farkas rows) keyed by the
        # active dependence set: within a band the active set is constant,
        # so only the per-level independence/avoidance rows are rebuilt.
        self._skeleton_cache: dict[tuple, tuple[ILPModel, set]] = {}
        # Exact satisfaction tracking: the sub-polyhedron of instance pairs
        # not yet strictly ordered by earlier levels.
        self._remaining = {id(d): d.polyhedron for d in ddg.deps}

    # -- public API -----------------------------------------------------------

    def schedule(self) -> Schedule:
        self.ddg.reset()
        self._remaining = {id(d): d.polyhedron for d in self.ddg.deps}
        sched = Schedule(self.program)
        band_start = 0
        stuck_guard = 0

        if self.options.fuse == "smart" and self._cut_dim_based(sched):
            band_start = sched.depth
        if self.options.fuse == "no" and self._cut(sched):
            band_start = sched.depth

        while not self._done(sched):
            if sched.depth >= self.options.max_levels:
                raise SchedulerError(
                    f"exceeded {self.options.max_levels} schedule levels"
                )
            row = None
            if not self._all_full_rank(sched):
                active = self._active_deps(sched, band_start)
                row = self.find_hyperplane(sched, active)
            if row is not None:
                level = sched.depth
                sched.add_row(row)
                self._update_ranks(sched)
                self._update_satisfaction(sched, level)
                self.stats.hyperplanes_found += 1
                stuck_guard = 0
                continue

            # No hyperplane: close the band (if any rows accumulated).
            if sched.depth > band_start:
                sched.bands.append(Band(band_start, sched.depth - 1))
                band_start = sched.depth
                stuck_guard = 0
                # Retrying with the shrunken active set may now succeed.
                if not self._all_full_rank(sched):
                    continue

            if self._cut(sched):
                band_start = sched.depth
                stuck_guard = 0
                continue

            stuck_guard += 1
            if stuck_guard > 1:
                raise SchedulerError(
                    f"scheduler stuck on {self.program.name}: "
                    f"{len(self.ddg.unsatisfied())} unsatisfied deps, "
                    f"ranks {sched.rank}"
                )

        if sched.depth > band_start:
            sched.bands.append(Band(band_start, sched.depth - 1))
        self._finalize_order(sched)
        return sched

    # -- pieces ------------------------------------------------------------------

    def _done(self, sched: Schedule) -> bool:
        return not self.ddg.unsatisfied() and self._all_full_rank(sched)

    def _all_full_rank(self, sched: Schedule) -> bool:
        return all(
            sched.rank[s.name] >= s.dim for s in self.program.statements
        )

    def _active_deps(self, sched: Schedule, band_start: int) -> list[Dependence]:
        """Deps constraining the next hyperplane: unsatisfied, or satisfied
        within the current band (keeps the band permutable)."""
        out = []
        for d in self.ddg.deps:
            if d.satisfied_by_cut:
                continue
            if d.satisfaction_level is None or d.satisfaction_level >= band_start:
                out.append(d)
        return out

    def _farkas(self, dep: Dependence) -> tuple[list, list]:
        key = id(dep)
        if key not in self._farkas_cache:
            self._farkas_cache[key] = (
                legality_constraints(dep),
                bounding_constraints(dep),
            )
            if self.warm is not None:
                legal, bound = self._farkas_cache[key]
                self.warm.note_farkas(
                    f"{dep.kind}:{dep.source.name}->{dep.target.name}"
                    f"@{dep.array}",
                    len(legal), len(bound),
                )
        return self._farkas_cache[key]

    # -- the per-level ILP ----------------------------------------------------------

    def _add_con(self, model: ILPModel, seen: set, con: LinearConstraint) -> None:
        """Normalized, de-duplicated constraint insertion.

        Rows are gcd-normalized (reusing the Fourier–Motzkin row machinery)
        before keying, so dependences with the same shape — or scaled
        variants of the same facet — collapse to one row; trivially-true
        rows are dropped outright.  The exact backend's cost grows with the
        row count, so every collapsed row is a direct solver saving
        (counted in ``stats.solve.dedup_rows``).
        """
        legacy = legacy_exact_mode()
        key = None
        if not legacy:
            items = sorted(con.coeffs.items())
            vals: list[int] = []
            integral = True
            for _, v in items:
                f = Fraction(v)
                if f.denominator != 1:
                    integral = False
                    break
                vals.append(int(f))
            const = Fraction(con.const)
            if integral and const.denominator == 1:
                raw = (tuple(vals) + (int(const),), con.equality)
                norm = normalize_row(raw)
                if norm is None:
                    self.stats.solve.dedup_rows += 1
                    return  # trivially satisfied
                nrow, neq = norm
                coeffs = {
                    name: c for (name, _), c in zip(items, nrow[:-1]) if c
                }
                con = LinearConstraint(coeffs, nrow[-1], neq, con.label)
                key = (tuple(sorted(coeffs.items())), nrow[-1], neq)
        if key is None:
            key = (tuple(sorted(con.coeffs.items())), con.const, con.equality)
        if key in seen:
            self.stats.solve.dedup_rows += 1
            return
        seen.add(key)
        model.add_constraint(con.coeffs, con.const, con.equality, con.label)

    def _build_skeleton(
        self, active: Sequence[Dependence]
    ) -> tuple[ILPModel, set]:
        """Variables, objective order, csum rows, and the Farkas rows of the
        active dependence set — everything that does not change while the
        current band is being grown."""
        opts = self.options
        plus = opts.algorithm == "plutoplus"
        b = opts.coeff_bound
        model = ILPModel()
        order: list[str] = []
        seen: set = set()

        for p in self.program.params:
            model.add_variable(u_name(p), lower=0)
            order.append(u_name(p))
        model.add_variable(W_NAME, lower=0)
        order.append(W_NAME)

        use_csum = plus and opts.csum_objective
        for s in self.program.statements:
            if use_csum:
                model.add_variable(csum_name(s), lower=0, upper=b * max(s.dim, 1))
                order.append(csum_name(s))
            for it in s.space.dims:
                if plus:
                    model.add_variable(c_name(s, it), lower=-b, upper=b)
                else:
                    model.add_variable(c_name(s, it), lower=0)
                order.append(c_name(s, it))
            for p in s.space.params:
                model.add_variable(d_name(s, p), lower=0)
                order.append(d_name(s, p))
            model.add_variable(c0_name(s), lower=0)
            order.append(c0_name(s))
            if plus:
                model.add_variable(delta_name(s), lower=0, upper=1)
                order.append(delta_name(s))
                model.add_variable(deltal_name(s), lower=0, upper=1)
                order.append(deltal_name(s))
            if plus and use_csum:
                for con in _csum_constraints(s, b):
                    self._add_con(model, seen, con)

        for dep in active:
            legal, bound = self._farkas(dep)
            for con in legal + bound:
                self._add_con(model, seen, con)

        for dep in self.rar:
            for con in self._rar_bounds(dep):
                self._add_con(model, seen, con)

        model.set_objective_order(order)
        return model, seen

    def _rar_bounds(self, dep: Dependence) -> list:
        key = id(dep)
        if key not in self._rar_bound_cache:
            self._rar_bound_cache[key] = bounding_constraints(dep)
        return self._rar_bound_cache[key]

    def build_model(
        self, sched: Schedule, active: Sequence[Dependence]
    ) -> ILPModel:
        opts = self.options
        plus = opts.algorithm == "plutoplus"
        b = opts.coeff_bound

        use_cache = not legacy_exact_mode()
        key = tuple(sorted(id(d) for d in active))
        cached = self._skeleton_cache.get(key) if use_cache else None
        if cached is None:
            skeleton, skeleton_seen = self._build_skeleton(active)
            if use_cache:
                self._skeleton_cache[key] = (skeleton, skeleton_seen)
        else:
            skeleton, skeleton_seen = cached
            self.stats.solve.models_reused += 1

        # Only the level-dependent rows are added on top of the (possibly
        # cached) skeleton: zero-avoidance and linear independence against
        # the hyperplanes found so far.
        model = skeleton.clone()
        seen = set(skeleton_seen)
        for s in self.program.statements:
            full = sched.rank[s.name] >= s.dim
            if full or s.dim == 0:
                continue
            if plus:
                for con in plutoplus_nonzero_constraints(s, b):
                    self._add_con(model, seen, con)
                for con in plutoplus_independence_constraints(
                    s, sched.h_rows(s), b
                ):
                    self._add_con(model, seen, con)
            else:
                for con in pluto_independence_constraints(s, sched.h_rows(s)):
                    self._add_con(model, seen, con)
        return model

    def _solve_key(
        self, sched: Schedule, active: Sequence[Dependence], extra=None
    ) -> str:
        from repro.core.skeleton import scheduler_solve_key

        return scheduler_solve_key(
            self.program, self.options, sched, active,
            memo=self.warm.digest_memo, extra=extra,
        )

    def _replay_row(self, record: dict) -> Optional[ScheduleRow]:
        """Reconstruct ``find_hyperplane``'s answer from a recorded solve.

        Only called for an *exact* solve-key match, where the lexmin
        optimum is a unique vector (every model variable is in the
        objective order) — so this is the same row a cold solve would
        produce, including the no-hyperplane (non-optimal / all-zero)
        outcomes.  Raises ``KeyError``/``ValueError`` on a malformed
        record; the caller falls back to the cold solve.
        """
        if record.get("status") != "optimal":
            return None
        assignment = record["assignment"]
        exprs: dict[str, AffExpr] = {}
        nonzero = False
        for s in self.program.statements:
            terms = {
                it: int(Fraction(assignment[c_name(s, it)]))
                for it in s.space.dims
            }
            for p in s.space.params:
                terms[p] = int(Fraction(assignment[d_name(s, p)]))
            const = int(Fraction(assignment[c0_name(s)]))
            expr = AffExpr.from_terms(s.space, terms, const)
            if any(terms.values()) or const:
                nonzero = True
            exprs[s.name] = expr
        if not nonzero:
            return None
        return ScheduleRow("loop", exprs)

    def _record_solve(self, skey: str, result) -> None:
        record: dict = {"status": result.status}
        if result.is_optimal:
            record["assignment"] = {
                name: str(value) for name, value in result.assignment.items()
            }
        self.warm.record(skey, record)

    def find_hyperplane(
        self, sched: Schedule, active: Sequence[Dependence]
    ) -> Optional[ScheduleRow]:
        skey = None
        if self.warm is not None:
            skey = self._solve_key(sched, active)
            record = self.warm.lookup(skey)
            if record is not None:
                try:
                    row = self._replay_row(record)
                except (KeyError, ValueError, TypeError):
                    self.warm.forget(skey)  # poisoned record: solve cold
                else:
                    self.warm.hits += 1
                    self.stats.structural_warm_start += 1
                    self.stats.solve.structural_warm_start += 1
                    return row
            self.warm.misses += 1
        model = self.build_model(sched, active)
        self.stats.ilp_variables_max = max(
            self.stats.ilp_variables_max, model.num_variables
        )
        t0 = time.perf_counter()
        result = lexmin(
            model,
            backend=self.options.ilp_backend,
            auto_threshold=self.options.auto_threshold,
        )
        dt = time.perf_counter() - t0
        self.stats.solve_seconds += dt
        self.stats.ilp_solves += result.solves
        self.stats.backends_used.add(result.backend)
        self.stats.solve.merge(result.stats)
        self.stats.solve.solve_seconds += dt
        if self.warm is not None:
            self._record_solve(skey, result)
        if not result.is_optimal:
            return None
        exprs: dict[str, AffExpr] = {}
        nonzero = False
        for s in self.program.statements:
            terms = {
                it: int(result.assignment[c_name(s, it)]) for it in s.space.dims
            }
            for p in s.space.params:
                terms[p] = int(result.assignment[d_name(s, p)])
            const = int(result.assignment[c0_name(s)])
            expr = AffExpr.from_terms(s.space, terms, const)
            if any(terms.values()) or const:
                nonzero = True
            exprs[s.name] = expr
        if not nonzero:
            return None
        return ScheduleRow("loop", exprs)

    # -- progress bookkeeping ----------------------------------------------------------

    def _update_ranks(self, sched: Schedule) -> None:
        for s in self.program.statements:
            rows = sched.h_rows(s)
            sched.rank[s.name] = FMatrix(rows).rank() if rows else 0

    def _update_satisfaction(self, sched: Schedule, level: int) -> None:
        """Exact per-dependence satisfaction at the new ``level``.

        A dependence is satisfied once every not-yet-ordered instance pair
        has distance >= 1 at this level; pairs with distance exactly 0 remain
        in the dependence's *remaining* polyhedron for deeper levels.

        Dependences sharing an identical ``(remaining polyhedron, distance
        expression)`` pair — e.g. the per-array copies of one stencil pattern
        in LBM — are batched: the minimum is computed once per group.
        """
        row = sched.rows[level]
        groups: dict[tuple, list] = {}
        for dep in self.ddg.deps:
            if dep.is_satisfied:
                continue
            remaining = self._remaining[id(dep)]
            expr = dep.distance_expr(
                row.expr_for(dep.source), row.expr_for(dep.target)
            )
            key = (remaining.content_key(), expr.coeffs)
            groups.setdefault(key, []).append((dep, remaining, expr))
        for members in groups.values():
            _, rem0, expr0 = members[0]
            mn = rem0.min_of(expr0)
            self.stats.sat_batched += len(members) - 1
            for dep, remaining, expr in members:
                if mn is None:  # remaining part already empty: fully ordered
                    dep.satisfaction_level = level
                    continue
                if mn >= 1:
                    dep.satisfaction_level = level
                    continue
                # Keep only the instance pairs this level fails to order.
                # For active deps legality guarantees expr >= 0, so that is
                # expr == 0; for retired deps the distance may be negative —
                # those pairs were already ordered by an earlier level of a
                # previous band.
                zero = remaining.copy()
                zero.add(Constraint(expr, equality=True))
                self._remaining[id(dep)] = zero

    def _cut_dim_based(self, sched: Schedule) -> bool:
        """Pluto's smartfuse opening move: order SCCs whose statements have
        different nesting depth before searching for common hyperplanes
        (statements of unequal dimensionality rarely profit from fusion and
        inflate the ILP)."""
        sccs = self.ddg.sccs(restrict_to_unsatisfied=True)
        if len(sccs) <= 1:
            return False
        dims = [max(s.dim for s in scc) for scc in sccs]
        if len(set(dims)) <= 1:
            return False
        # group consecutive SCCs of equal dimensionality; order the groups
        index: dict[str, int] = {}
        pos = 0
        for k, scc in enumerate(sccs):
            if k > 0 and dims[k] != dims[k - 1]:
                pos += 1
            for s in scc:
                index[s.name] = pos
        if len(set(index.values())) <= 1:
            return False
        if self.ddg.mark_cut_satisfied(index) == 0:
            return False
        sched.add_scalar_row(index)
        self.stats.cuts += 1
        return True

    def _cut(self, sched: Schedule) -> bool:
        """Insert a scalar dimension ordering the SCCs of the unsatisfied DDG."""
        sccs = self.ddg.sccs(restrict_to_unsatisfied=True)
        if len(sccs) <= 1:
            return False
        index: dict[str, int] = {}
        for pos, scc in enumerate(sccs):
            for s in scc:
                index[s.name] = pos
        if self.ddg.mark_cut_satisfied(index) == 0 and self.ddg.unsatisfied():
            # The cut would order nothing that matters; cutting again cannot
            # make progress, so report failure to the driver.
            return False
        sched.add_scalar_row(index)
        self.stats.cuts += 1
        return True

    def _finalize_order(self, sched: Schedule) -> None:
        """Append a final scalar dimension when distinct statements share an
        identical schedule prefix (the 2d+1 "beta" role), so code generation
        has a total order."""
        if len(self.program.statements) < 2:
            return
        maps = {
            s.name: tuple(
                tuple(row.expr_for(s).coeffs) for row in sched.rows
            )
            for s in self.program.statements
        }
        if len(set(maps.values())) == len(maps):
            return
        positions = {
            s.name: i for i, s in enumerate(self.program.statements)
        }
        sched.add_scalar_row(positions)


def _csum_constraints(stmt: Statement, bound: int) -> list[LinearConstraint]:
    """Section 3.6: ``csum_S >= +/- c_1 +/- c_2 ... +/- c_m`` (all sign rows)."""
    out: list[LinearConstraint] = []
    m = stmt.dim
    if m == 0:
        return out
    names = [c_name(stmt, it) for it in stmt.space.dims]
    for mask in range(1 << m):
        terms = {csum_name(stmt): 1}
        for k, name in enumerate(names):
            terms[name] = -1 if not (mask >> k) & 1 else 1
        out.append(LinearConstraint(terms, 0, label=f"csum:{stmt.name}"))
    return out
