"""Schedule containers: per-statement multi-dimensional affine transformations.

A :class:`Schedule` is a list of levels; each level holds one affine
expression per statement (a hyperplane found by the ILP, or a scalar ordering
dimension introduced by an SCC cut).  Bands group consecutive hyperplane
levels that are mutually permutable — the unit of tiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.frontend.ir import Program, Statement
from repro.polyhedra import AffExpr, AffineMap

__all__ = ["ScheduleRow", "Band", "Schedule"]


@dataclass
class ScheduleRow:
    """One schedule level.

    ``kind`` is ``"loop"`` for an ILP-found hyperplane and ``"scalar"`` for an
    SCC-ordering dimension.  ``exprs`` maps statement name to the level's
    affine expression over that statement's space (constant for scalars).
    ``parallel`` is filled by the property pass: True when the loop carries no
    dependence.  ``reduction`` (pipeline-filled, ``None`` unless
    ``parallel_reductions`` is enabled) lists the relaxed reduction
    dependences this level would otherwise carry, as
    ``{"stmt", "array", "op", "mode"}`` tags — the emitters use it to
    discharge the relaxation (privatized partial sums / ``reduction(..)``
    clauses).
    """

    kind: str
    exprs: dict[str, AffExpr]
    parallel: Optional[bool] = None
    reduction: Optional[list] = None

    def expr_for(self, stmt: Statement | str) -> AffExpr:
        name = stmt if isinstance(stmt, str) else stmt.name
        return self.exprs[name]

    def coeff_rows(self, stmt: Statement) -> list[int]:
        """Dimension coefficients (no params/const) for ``stmt``."""
        e = self.expr_for(stmt)
        return [e.coeff_of(d) for d in stmt.space.dims]

    def is_constant_for(self, stmt: Statement) -> bool:
        return self.expr_for(stmt).is_constant()

    def __str__(self) -> str:
        inner = ", ".join(f"{k}: {e}" for k, e in self.exprs.items())
        return f"[{self.kind}] {inner}"


@dataclass
class Band:
    """A maximal set of consecutive, mutually permutable loop levels."""

    start: int                      # first level index (inclusive)
    end: int                        # last level index (inclusive)
    permutable: bool = True
    concurrent_start: bool = False  # diamond-tiled band (Section 2.4 / [2])

    @property
    def width(self) -> int:
        return self.end - self.start + 1

    def levels(self) -> range:
        return range(self.start, self.end + 1)

    def __str__(self) -> str:
        flags = "permutable" if self.permutable else "non-permutable"
        if self.concurrent_start:
            flags += ", concurrent-start"
        return f"band[{self.start}..{self.end}] ({flags})"


class Schedule:
    """The transformation computed for a program."""

    def __init__(self, program: Program):
        self.program = program
        self.rows: list[ScheduleRow] = []
        self.bands: list[Band] = []
        #: per-statement count of linearly independent hyperplanes found
        self.rank: dict[str, int] = {s.name: 0 for s in program.statements}

    # -- construction --------------------------------------------------------

    def add_row(self, row: ScheduleRow) -> None:
        self.rows.append(row)

    def add_scalar_row(self, positions: dict[str, int]) -> None:
        exprs = {
            s.name: AffExpr.const(s.space, positions[s.name])
            for s in self.program.statements
        }
        self.rows.append(ScheduleRow("scalar", exprs))

    # -- queries -------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.rows)

    def loop_levels(self) -> list[int]:
        return [i for i, r in enumerate(self.rows) if r.kind == "loop"]

    def h_rows(self, stmt: Statement) -> list[list[int]]:
        """The ``H_S`` matrix: dimension-coefficient rows found so far."""
        out = []
        for row in self.rows:
            if row.kind != "loop":
                continue
            coeffs = row.coeff_rows(stmt)
            if any(coeffs):
                out.append(coeffs)
        return out

    def is_full_rank(self, stmt: Statement) -> bool:
        return self.rank[stmt.name] >= stmt.dim

    def map_for(self, stmt: Statement | str) -> AffineMap:
        s = self.program.statement(stmt) if isinstance(stmt, str) else stmt
        return AffineMap(s.space, [row.expr_for(s) for row in self.rows])

    def band_at(self, level: int) -> Optional[Band]:
        for band in self.bands:
            if band.start <= level <= band.end:
                return band
        return None

    def outermost_parallel_level(self) -> Optional[int]:
        for i, row in enumerate(self.rows):
            if row.kind == "loop" and row.parallel:
                return i
        return None

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (coefficients per statement per level)."""
        # The "reduction" key appears only on tagged rows: schedules built
        # with parallel_reductions off (every pre-reduction record) keep
        # their exact historical byte shape.
        return {
            "program": self.program.name,
            "rows": [
                {
                    "kind": row.kind,
                    "parallel": row.parallel,
                    "exprs": {
                        name: list(expr.coeffs)
                        for name, expr in row.exprs.items()
                    },
                    **(
                        {"reduction": row.reduction}
                        if row.reduction
                        else {}
                    ),
                }
                for row in self.rows
            ],
            "bands": [
                {
                    "start": b.start,
                    "end": b.end,
                    "permutable": b.permutable,
                    "concurrent_start": b.concurrent_start,
                }
                for b in self.bands
            ],
        }

    @classmethod
    def from_dict(cls, program: Program, data: dict) -> "Schedule":
        """Rebuild a schedule exported by :meth:`to_dict` for ``program``."""
        if data.get("program") != program.name:
            raise ValueError(
                f"schedule was exported for {data.get('program')!r}, "
                f"not {program.name!r}"
            )
        sched = cls(program)
        for row_data in data["rows"]:
            exprs = {}
            for name, coeffs in row_data["exprs"].items():
                stmt = program.statement(name)
                exprs[name] = AffExpr(stmt.space, coeffs)
            row = ScheduleRow(
                row_data["kind"],
                exprs,
                row_data.get("parallel"),
                reduction=row_data.get("reduction"),
            )
            sched.add_row(row)
        for b in data.get("bands", []):
            sched.bands.append(
                Band(b["start"], b["end"], b["permutable"], b["concurrent_start"])
            )
        for stmt in program.statements:
            rows = sched.h_rows(stmt)
            if rows:
                from repro.linalg import FMatrix

                sched.rank[stmt.name] = FMatrix(rows).rank()
        return sched

    def __eq__(self, other) -> bool:
        """Structural equality: same program, rows, and bands.

        ``rank`` is derived bookkeeping and deliberately excluded."""
        return (
            isinstance(other, Schedule)
            and self.program == other.program
            and self.rows == other.rows
            and self.bands == other.bands
        )

    __hash__ = None

    def pretty(self) -> str:
        lines = [f"schedule for {self.program.name} (depth {self.depth}):"]
        for i, row in enumerate(self.rows):
            band = self.band_at(i)
            tag = ""
            if row.kind == "loop":
                tag = " parallel" if row.parallel else " sequential"
            if band and band.start == i and band.width > 1:
                tag += f"  <- {band}"
            lines.append(f"  t{i}: {row}{tag}")
        for s in self.program.statements:
            lines.append(f"  T_{s.name}{tuple(s.space.dims)} = {self.map_for(s)}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()
