"""Canonical ILP variable names for transformation coefficients.

One hyperplane search builds a single ILP whose variables are, per statement
``S`` with iterators ``i1..im`` and program parameters ``p1..pk``:

* ``c.S.i``   — dimension coefficients (the ``c_i`` of eq. (1));
* ``d.S.p``   — parametric shift coefficients (``d_i``);
* ``c0.S``    — constant shift (``c_0``);
* ``csum.S``  — sum of absolute dimension coefficients (Pluto+, Section 3.6);
* ``dz.S``    — zero-avoidance decision variable ``delta_S`` (Section 3.3);
* ``dl.S``    — linear-independence decision variable ``delta^l_S`` (3.4);

plus the global bounding function ``u.p`` / ``w`` (eq. (3)).
"""

from __future__ import annotations

from repro.frontend.ir import Statement

__all__ = [
    "c_name", "d_name", "c0_name", "csum_name", "delta_name", "deltal_name",
    "u_name", "W_NAME",
]

W_NAME = "w"


def c_name(stmt: Statement | str, iter_name: str) -> str:
    s = stmt if isinstance(stmt, str) else stmt.name
    return f"c.{s}.{iter_name}"


def d_name(stmt: Statement | str, param: str) -> str:
    s = stmt if isinstance(stmt, str) else stmt.name
    return f"d.{s}.{param}"


def c0_name(stmt: Statement | str) -> str:
    s = stmt if isinstance(stmt, str) else stmt.name
    return f"c0.{s}"


def csum_name(stmt: Statement | str) -> str:
    s = stmt if isinstance(stmt, str) else stmt.name
    return f"csum.{s}"


def delta_name(stmt: Statement | str) -> str:
    s = stmt if isinstance(stmt, str) else stmt.name
    return f"dz.{s}"


def deltal_name(stmt: Statement | str) -> str:
    s = stmt if isinstance(stmt, str) else stmt.name
    return f"dl.{s}"


def u_name(param: str) -> str:
    return f"u.{param}"
