"""Index set splitting (ISS) for long (periodic/symmetric) dependences.

Implements the mid-point splitting of Bondhugula et al. (PACT 2014, [6] in
the paper), which this paper combines with the enlarged transformation space:
a dependence whose distance along some dimension is *parametric* (e.g. the
``N-1``-long wraparound arcs of a periodic stencil, Fig. 4b) blocks tiling;
cutting the domain at the mid-point of those arcs (Fig. 4c) yields two
statements whose dependences can be shortened — but only by transformations
that reverse one of the halves, which is exactly what Pluto+ contributes.

The splitting here is the "hyperplane through the mid-points" special case:
for each statement dimension carrying a long dependence, the domain is cut at
the mid-point of the dimension's extent (``2i <= lb+ub`` vs ``2i >= lb+ub+1``),
and every affected statement is replaced by one copy per orthant of its cut
dimensions.  This covers the paper's periodic stencil, LBM, and swim
workloads and the symmetric patterns of Figs. 2-3.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.deps.analysis import Dependence, compute_dependences
from repro.frontend.ir import Access, Program, Statement
from repro.polyhedra import AffExpr, BasicSet, Constraint

__all__ = ["long_dependence_dims", "index_set_split", "needs_iss"]


def _min_at_params(dep: Dependence, expr: AffExpr, bump: int):
    """Min of ``expr`` with every parameter pinned to ``param_min + bump``."""
    space = dep.space
    poly = dep.polyhedron.copy()
    program_min = {}
    for p in space.params:
        # The polyhedron already contains ``p >= param_min``; recover that
        # lower bound from its constraints to pin consistently.
        lows, _ = poly.bounds_for(p)
        base = max(
            (int(e.const_term) for e, k in lows if e.is_constant() and k == 1),
            default=2,
        )
        program_min[p] = base + bump
        poly.add(
            Constraint(
                AffExpr.var(space, p) - AffExpr.const(space, base + bump),
                equality=True,
            )
        )
    return poly.min_of(expr)


def _dim_distance_is_long(dep: Dependence, dim: str) -> bool:
    """True when the dependence distance along ``dim`` has a *parametric
    minimum magnitude* — the arcs ISS must cut (Fig. 4b).

    Distances that merely have an unbounded maximum (e.g. memory-based
    rewrites of the same cell at every later time step, minimum distance 1)
    do not block tiling and are not split.
    """
    if dim not in dep.source.space.dims or dim not in dep.target.space.dims:
        return False
    expr = AffExpr.var(dep.space, dep.tgt_rename[dim]) - AffExpr.var(
        dep.space, dep.src_rename[dim]
    )
    try:
        lo = dep.polyhedron.min_of(expr)
    except ValueError:
        return True  # minimum unbounded below: certainly parametric
    if lo is None:
        return False  # empty (should not happen for kept deps)
    try:
        dep.polyhedron.max_of(expr)
        return False  # bounded constant range: short
    except ValueError:
        pass
    # Max unbounded above: decide whether the *minimum* tracks the parameters
    # by probing two parameter contexts.
    lo_small = _min_at_params(dep, expr, 0)
    lo_large = _min_at_params(dep, expr, 8)
    return lo_small != lo_large


def long_dependence_dims(deps: Sequence[Dependence]) -> dict[str, set[str]]:
    """Map statement name -> dims along which it has a long dependence."""
    out: dict[str, set[str]] = {}
    for dep in deps:
        for dim in set(dep.source.space.dims) & set(dep.target.space.dims):
            if _dim_distance_is_long(dep, dim):
                out.setdefault(dep.source.name, set()).add(dim)
                out.setdefault(dep.target.name, set()).add(dim)
    return out


def needs_iss(deps: Sequence[Dependence]) -> bool:
    return bool(long_dependence_dims(deps))


def _midpoint_cut(stmt: Statement, dim: str) -> Optional[tuple[AffExpr, AffExpr]]:
    """Expressions ``(lo_side, hi_side)``: ``2*dim - (lb+ub) <= 0`` and
    ``>= 1`` respectively, from the dimension's symbolic bounds."""
    lowers, uppers = stmt.domain.bounds_for(dim)
    if not lowers or not uppers:
        return None
    lb_expr, lb_div = lowers[0]
    ub_expr, ub_div = uppers[0]
    if lb_div != 1 or ub_div != 1:
        return None
    d = AffExpr.var(stmt.space, dim)
    mid_sum = lb_expr + ub_expr           # lb + ub
    lo_side = mid_sum - 2 * d             # >= 0  <=>  2*dim <= lb+ub
    hi_side = 2 * d - mid_sum - 1         # >= 0  <=>  2*dim >= lb+ub+1
    return lo_side, hi_side


def index_set_split(
    program: Program,
    deps: Optional[Sequence[Dependence]] = None,
) -> tuple[Program, bool]:
    """Split statements carrying long dependences at dimension mid-points.

    Returns ``(new_program, changed)``.  When no long dependence exists the
    original program is returned unchanged (``changed = False``).
    Dependences must be recomputed on the new program by the caller.
    """
    if deps is None:
        deps = compute_dependences(program)
    cut_dims = long_dependence_dims(deps)
    if not cut_dims:
        return program, False

    # The splitting hyperplane cuts the *whole* computation, not only the
    # statements that own long dependences ([6] splits the fused iteration
    # space): a statement left unsplit would need a single transformation
    # coefficient to serve both halves of its split neighbors, which makes
    # the shift systems infeasible (observed on swim: the copy-back sweep
    # must be quadranted even though its own dependences are short).
    global_dims = sorted({d for dims in cut_dims.values() for d in dims})

    out = Program(program.name, program.params, program.param_min)
    for stmt in program.statements:
        dims = [d for d in global_dims if d in stmt.space.dims]
        cuts = []
        for dim in dims:
            cut = _midpoint_cut(stmt, dim)
            if cut is not None:
                cuts.append((dim, cut))
        if not cuts:
            out.add_statement(
                Statement(
                    name=stmt.name,
                    domain=stmt.domain.copy(),
                    reads=list(stmt.reads),
                    writes=list(stmt.writes),
                    body=stmt.body,
                    text=stmt.text,
                    sched=list(stmt.sched),
                )
            )
            continue
        for sides in itertools.product((0, 1), repeat=len(cuts)):
            suffix = "".join("m" if s == 0 else "p" for s in sides)
            domain = stmt.domain.copy()
            for (dim, (lo, hi)), side in zip(cuts, sides):
                domain.add(Constraint(lo if side == 0 else hi))
            if domain.is_empty():
                continue
            out.add_statement(
                Statement(
                    name=f"{stmt.name}_{suffix}",
                    domain=domain,
                    reads=[Access(a.array, a.map, a.guard) for a in stmt.reads],
                    writes=[Access(a.array, a.map, a.guard) for a in stmt.writes],
                    body=stmt.body,
                    text=stmt.text,
                    sched=list(stmt.sched),
                )
            )
    return out, True
