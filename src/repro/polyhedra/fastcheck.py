"""Fast floating-point feasibility pre-checks (scipy/HiGHS).

Dependence analysis on the larger workloads (LBM d3q27 after index-set
splitting) issues tens of thousands of emptiness tests; running the exact
rational simplex on each is prohibitive in pure Python.  HiGHS decides
rational feasibility of these tiny integer-coefficient systems in a fraction
of a millisecond:

* **LP infeasible** -> the set is empty (the rational relaxation contains the
  integer points).  HiGHS determines infeasibility with a certificate; on
  unit-scale integer data a wrong answer would require pathological
  conditioning that these systems cannot exhibit.
* **LP feasible**  -> fall back to the exact integer check; the relaxation
  may still be integer-empty.
"""

from __future__ import annotations

from math import gcd

import numpy as np
from scipy import optimize

from repro.polyhedra.cache import MISS, active_cache
from repro.polyhedra.sets import BasicSet

__all__ = ["fast_reject", "lp_feasible", "set_is_empty"]


def _lp_solve(bs: BasicSet):
    """Solve the rational feasibility LP; returns the scipy result."""
    names = list(bs.space.names)
    n = len(names)
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for con in bs.constraints:
        row = np.zeros(n)
        for i in range(n):
            row[i] = con.coeffs[i]
        const = con.coeffs[-1]
        if con.equality:
            a_eq.append(row)
            b_eq.append(-const)
        else:
            a_ub.append(-row)   # expr + const >= 0  ->  -expr <= const
            b_ub.append(const)
    return optimize.linprog(
        c=np.zeros(n),
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(None, None)] * n,
        method="highs",
    )


def lp_feasible(bs: BasicSet) -> bool:
    """Whether the rational relaxation of ``bs`` is non-empty."""
    # status 2 = infeasible; anything else (optimal/unbounded) means feasible
    return _lp_solve(bs).status != 2


def _integer_witness(bs: BasicSet, point) -> bool:
    """Whether rounding the LP point yields an integer point of ``bs``.

    A successful witness proves non-emptiness without the exact ILP; a
    failed one proves nothing (the exact check still runs).
    """
    if point is None:
        return False
    values = {
        name: int(round(float(v))) for name, v in zip(bs.space.names, point)
    }
    return bs.contains(values)


def fast_reject(bs: BasicSet) -> bool:
    """Cheap, sound emptiness proofs — no LP/ILP call.

    Two rules, both exact rejections (``True`` always means empty):

    * **gcd**: an equality whose variable-coefficient gcd does not divide its
      constant has no integer solution (``Constraint`` normalization keeps
      such rows un-divided precisely so this test can see them);
    * **per-slope interval clash**: rows are bucketed by their (sign-
      canonicalized) variable-coefficient vector ``s``; each bucket
      accumulates the tightest lower and upper bound on the common value
      ``s.x``.  An empty interval — e.g. the conflict equality ``t - s == 0``
      against the happens-before row ``t - s >= 1``, the dominant shape of
      empty dependence polyhedra — proves emptiness.

    Inequality rows arrive gcd-normalized with floor-tightened constants, so
    same-slope bounds compare as plain integers.
    """
    intervals: dict[tuple[int, ...], list] = {}
    for con in bs.constraints:
        coeffs = con.coeffs
        var = coeffs[:-1]
        c = coeffs[-1]
        first = next((v for v in var if v != 0), 0)
        if first == 0:
            if con.is_contradiction():
                return True
            continue
        if con.equality:
            g = 0
            for v in var:
                g = gcd(g, abs(v))
            if c % g != 0:
                return True
        if first < 0:
            slope = tuple(-v for v in var)
            flipped = True
        else:
            slope = var
            flipped = False
        bounds = intervals.setdefault(slope, [None, None])  # [lo, hi] of s.x
        if con.equality:
            value = c if flipped else -c
            if bounds[0] is None or value > bounds[0]:
                bounds[0] = value
            if bounds[1] is None or value < bounds[1]:
                bounds[1] = value
        elif flipped:
            if bounds[1] is None or c < bounds[1]:   # s.x <= c
                bounds[1] = c
        else:
            if bounds[0] is None or -c > bounds[0]:  # s.x >= -c
                bounds[0] = -c
        if bounds[0] is not None and bounds[1] is not None and bounds[0] > bounds[1]:
            return True
    return False


def set_is_empty(bs: BasicSet) -> bool:
    """Exact integer emptiness: fast-reject, memo, LP pre-filter, exact ILP.

    With the fast path disabled (``REPRO_DEPS_NO_CACHE=1`` or
    :func:`repro.polyhedra.cache.cache_disabled`) this degrades to the seed
    behavior: LP pre-filter plus exact fallback, nothing skipped or reused.
    """
    if any(c.is_contradiction() for c in bs.constraints):
        return True
    cache = active_cache()
    if cache is not None:
        if fast_reject(bs):
            cache.stats.fast_rejects += 1
            return True
        hit = cache.get_empty(bs.content_key())
        if hit is not MISS:
            return hit
        res = _lp_solve(bs)
        if res.status == 2:
            cache.put_empty(bs.content_key(), True)
            return True
        if _integer_witness(bs, res.x):
            cache.put_empty(bs.content_key(), False)
            return False
        return bs.is_empty()  # consults and fills the same memo table
    if not lp_feasible(bs):
        return True
    return bs.is_empty()
