"""Fast floating-point feasibility pre-checks (scipy/HiGHS).

Dependence analysis on the larger workloads (LBM d3q27 after index-set
splitting) issues tens of thousands of emptiness tests; running the exact
rational simplex on each is prohibitive in pure Python.  HiGHS decides
rational feasibility of these tiny integer-coefficient systems in a fraction
of a millisecond:

* **LP infeasible** -> the set is empty (the rational relaxation contains the
  integer points).  HiGHS determines infeasibility with a certificate; on
  unit-scale integer data a wrong answer would require pathological
  conditioning that these systems cannot exhibit.
* **LP feasible**  -> fall back to the exact integer check; the relaxation
  may still be integer-empty.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.polyhedra.sets import BasicSet

__all__ = ["lp_feasible", "set_is_empty"]


def lp_feasible(bs: BasicSet) -> bool:
    """Whether the rational relaxation of ``bs`` is non-empty."""
    names = list(bs.space.names)
    index = {n: i for i, n in enumerate(names)}
    n = len(names)
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for con in bs.constraints:
        row = np.zeros(n)
        for i in range(n):
            row[i] = con.coeffs[i]
        const = con.coeffs[-1]
        if con.equality:
            a_eq.append(row)
            b_eq.append(-const)
        else:
            a_ub.append(-row)   # expr + const >= 0  ->  -expr <= const
            b_ub.append(const)
    res = optimize.linprog(
        c=np.zeros(n),
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(None, None)] * n,
        method="highs",
    )
    # status 2 = infeasible; anything else (optimal/unbounded) means feasible
    return res.status != 2


def set_is_empty(bs: BasicSet) -> bool:
    """Exact integer emptiness with the fast LP pre-filter."""
    if any(c.is_contradiction() for c in bs.constraints):
        return True
    if not lp_feasible(bs):
        return True
    return bs.is_empty()
