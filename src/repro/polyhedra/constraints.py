"""Affine constraints over a :class:`~repro.polyhedra.affine.Space`.

A constraint is ``expr >= 0`` (inequality) or ``expr == 0`` (equality), with
``expr`` an integer :class:`AffExpr`.  Constraints are normalized on
construction: coefficients divided by their GCD, with inequality constants
tightened to the integer hull of the single constraint
(``floor`` division of the constant by the GCD of the variable coefficients).
"""

from __future__ import annotations

from math import gcd
from typing import Mapping, Sequence

from repro.polyhedra.affine import AffExpr, Space

__all__ = ["Constraint", "ineq", "eq"]


class Constraint:
    """``expr >= 0`` or ``expr == 0`` over a space."""

    __slots__ = ("expr", "equality")

    def __init__(self, expr: AffExpr, equality: bool = False):
        object.__setattr__(self, "expr", _normalize(expr, equality))
        object.__setattr__(self, "equality", bool(equality))

    def __setattr__(self, *a):
        raise AttributeError("Constraint is immutable")

    @property
    def space(self) -> Space:
        return self.expr.space

    @property
    def coeffs(self) -> tuple[int, ...]:
        return self.expr.coeffs

    def coeff_of(self, name: str) -> int:
        return self.expr.coeff_of(name)

    def is_satisfied(self, values: Mapping[str, int]) -> bool:
        v = self.expr.evaluate(values)
        return v == 0 if self.equality else v >= 0

    def is_trivial(self) -> bool:
        """True for ``c >= 0`` with ``c >= 0``, or ``0 == 0``."""
        if not self.expr.is_constant():
            return False
        c = self.expr.const_term
        return c == 0 if self.equality else c >= 0

    def is_contradiction(self) -> bool:
        """True for ``c >= 0`` with ``c < 0``, or ``c == 0`` with ``c != 0``."""
        if not self.expr.is_constant():
            return False
        c = self.expr.const_term
        return c != 0 if self.equality else c < 0

    def rebase(self, target: Space, rename: Mapping[str, str] | None = None) -> "Constraint":
        return Constraint(self.expr.rebase(target, rename), self.equality)

    def negate(self) -> "Constraint":
        """The complementary half-space: ``expr >= 0``  ->  ``-expr - 1 >= 0``.

        Only meaningful for inequalities over integer points.
        """
        if self.equality:
            raise ValueError("cannot negate an equality into a single half-space")
        return Constraint(-self.expr - 1)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constraint)
            and self.equality == other.equality
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        return hash((self.expr, self.equality))

    def __reduce__(self):
        # Immutable __slots__ class (see AffExpr.__reduce__).
        return (Constraint, (self.expr, self.equality))

    def __str__(self) -> str:
        op = "==" if self.equality else ">="
        return f"{self.expr} {op} 0"

    __repr__ = __str__


def _normalize(expr: AffExpr, equality: bool) -> AffExpr:
    """GCD-normalize; for inequalities, tighten the constant by floor division."""
    var_gcd = 0
    for c in expr.coeffs[:-1]:
        var_gcd = gcd(var_gcd, abs(c))
    if var_gcd <= 1:
        return expr
    const = expr.const_term
    if equality:
        # An equality with const not divisible by the gcd has no integer
        # solutions; keep it as-is so emptiness checks see the contradiction.
        if const % var_gcd != 0:
            return expr
        new_const = const // var_gcd
    else:
        new_const = const // var_gcd  # floor: sound integer tightening
    coeffs = [c // var_gcd for c in expr.coeffs[:-1]] + [new_const]
    return AffExpr(expr.space, coeffs)


def ineq(space: Space, terms: Mapping[str, int], const: int = 0) -> Constraint:
    """``terms . x + const >= 0``."""
    return Constraint(AffExpr.from_terms(space, terms, const))


def eq(space: Space, terms: Mapping[str, int], const: int = 0) -> Constraint:
    """``terms . x + const == 0``."""
    return Constraint(AffExpr.from_terms(space, terms, const), equality=True)
