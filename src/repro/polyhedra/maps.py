"""Multi-dimensional affine functions (access functions and transformations).

An :class:`AffineMap` is a tuple of :class:`AffExpr` over one domain space —
exactly the ``T(i) = M.i + m0`` form of Section 2.1, with parameter and
constant columns included (so parametric shifts are first-class, as Pluto+
requires).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.linalg import FMatrix
from repro.polyhedra.affine import AffExpr, Space

__all__ = ["AffineMap"]


class AffineMap:
    """``f : domain -> Z^n`` given by one affine expression per output dim."""

    def __init__(self, domain: Space, exprs: Sequence[AffExpr]):
        for e in exprs:
            if e.space != domain:
                raise ValueError("all output expressions must live in the domain space")
        self.domain = domain
        self.exprs = tuple(exprs)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def identity(cls, domain: Space) -> "AffineMap":
        return cls(domain, [AffExpr.var(domain, d) for d in domain.dims])

    @classmethod
    def from_rows(
        cls,
        domain: Space,
        rows: Iterable[Sequence[int]],
    ) -> "AffineMap":
        """Rows are full coefficient vectors (dims + params + const)."""
        return cls(domain, [AffExpr(domain, row) for row in rows])

    @classmethod
    def from_terms(
        cls,
        domain: Space,
        rows: Iterable[tuple[Mapping[str, int], int]],
    ) -> "AffineMap":
        return cls(
            domain,
            [AffExpr.from_terms(domain, terms, const) for terms, const in rows],
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def n_out(self) -> int:
        return len(self.exprs)

    def dim_matrix(self) -> list[list[int]]:
        """The ``M`` matrix restricted to iterator columns (no params/const)."""
        return [
            [e.coeff_of(d) for d in self.domain.dims] for e in self.exprs
        ]

    def apply(self, values: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(e.evaluate(values) for e in self.exprs)

    def rank(self) -> int:
        m = self.dim_matrix()
        if not m:
            return 0
        return FMatrix(m).rank()

    def is_one_to_one(self) -> bool:
        """Full column rank on iterator columns => injective on the index set."""
        return self.rank() == len(self.domain.dims)

    def append(self, expr: AffExpr) -> "AffineMap":
        return AffineMap(self.domain, list(self.exprs) + [expr])

    def concat(self, other: "AffineMap") -> "AffineMap":
        if other.domain != self.domain:
            raise ValueError("domain mismatch in concat")
        return AffineMap(self.domain, list(self.exprs) + list(other.exprs))

    def compose_unimodular(self, mat: Sequence[Sequence[int]]) -> "AffineMap":
        """Left-compose with an integer matrix: ``g = mat . f`` (row combos)."""
        new = []
        for row in mat:
            if len(row) != self.n_out:
                raise ValueError("matrix width must equal n_out")
            acc = AffExpr.zero(self.domain)
            for k, e in zip(row, self.exprs):
                acc = acc + e * int(k)
            new.append(acc)
        return AffineMap(self.domain, new)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AffineMap)
            and self.domain == other.domain
            and self.exprs == other.exprs
        )

    def __getitem__(self, i: int) -> AffExpr:
        return self.exprs[i]

    def __len__(self) -> int:
        return len(self.exprs)

    def __iter__(self):
        return iter(self.exprs)

    def __str__(self) -> str:
        return f"({', '.join(str(e) for e in self.exprs)})"

    __repr__ = __str__
