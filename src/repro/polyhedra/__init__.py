"""Polyhedral set and map machinery (the ISL-role substrate)."""

from repro.polyhedra.affine import AffExpr, Space
from repro.polyhedra.cache import (
    PolyCache,
    PolyCacheStats,
    cache_disabled,
    cache_enabled,
    global_cache,
)
from repro.polyhedra.constraints import Constraint, eq, ineq
from repro.polyhedra.fourier_motzkin import (
    eliminate_column,
    eliminate_columns,
    normalize_row,
    normalize_rows,
)
from repro.polyhedra.maps import AffineMap
from repro.polyhedra.sets import BasicSet, UnionSet

__all__ = [
    "AffExpr",
    "AffineMap",
    "BasicSet",
    "Constraint",
    "PolyCache",
    "PolyCacheStats",
    "Space",
    "UnionSet",
    "cache_disabled",
    "cache_enabled",
    "global_cache",
    "eliminate_column",
    "eliminate_columns",
    "eq",
    "ineq",
    "normalize_row",
    "normalize_rows",
]
