"""Spaces and affine expressions.

A :class:`Space` fixes an ordered list of *dimension* names (loop iterators),
*parameter* names (problem-size symbols like ``N``), and an implicit constant
column.  Affine expressions and constraints are coefficient vectors over that
column order — ``dims + params + (1,)`` — which keeps every downstream
operation (Fourier–Motzkin, Farkas elimination, code generation) a matter of
integer vector arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterable, Mapping, Sequence

__all__ = ["Space", "AffExpr"]


@dataclass(frozen=True)
class Space:
    """An ordered coordinate system: dims, then params, then the constant."""

    dims: tuple[str, ...]
    params: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = list(self.dims) + list(self.params)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate names in space: {names}")

    @property
    def ncols(self) -> int:
        return len(self.dims) + len(self.params) + 1

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def names(self) -> tuple[str, ...]:
        return self.dims + self.params

    def column_of(self, name: str) -> int:
        """Column index of a dim or param; the constant column is ``ncols - 1``."""
        if name in self.dims:
            return self.dims.index(name)
        if name in self.params:
            return len(self.dims) + self.params.index(name)
        raise KeyError(f"{name!r} not in space {self}")

    @property
    def const_col(self) -> int:
        return self.ncols - 1

    def with_dims(self, dims: Sequence[str]) -> "Space":
        return Space(tuple(dims), self.params)

    def add_dims(self, new: Sequence[str]) -> "Space":
        return Space(self.dims + tuple(new), self.params)

    def drop_dims(self, names: Iterable[str]) -> "Space":
        drop = set(names)
        return Space(tuple(d for d in self.dims if d not in drop), self.params)

    def product(self, other: "Space", rename: Mapping[str, str]) -> "Space":
        """Product space with ``other``'s dims renamed via ``rename``."""
        if self.params != other.params:
            raise ValueError("product requires identical parameter lists")
        other_dims = tuple(rename.get(d, d) for d in other.dims)
        return Space(self.dims + other_dims, self.params)

    def __str__(self) -> str:
        p = f"; {', '.join(self.params)}" if self.params else ""
        return f"[{', '.join(self.dims)}{p}]"


class AffExpr:
    """An integer affine expression over a :class:`Space`.

    Stored as a coefficient tuple of length ``space.ncols`` (constant last).
    Immutable; arithmetic returns new expressions.
    """

    __slots__ = ("space", "coeffs")

    def __init__(self, space: Space, coeffs: Sequence[int]):
        if len(coeffs) != space.ncols:
            raise ValueError(
                f"expected {space.ncols} coefficients, got {len(coeffs)}"
            )
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "coeffs", tuple(int(c) for c in coeffs))

    def __setattr__(self, *a):  # immutability
        raise AttributeError("AffExpr is immutable")

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, space: Space) -> "AffExpr":
        return cls(space, (0,) * space.ncols)

    @classmethod
    def const(cls, space: Space, value: int) -> "AffExpr":
        coeffs = [0] * space.ncols
        coeffs[-1] = int(value)
        return cls(space, coeffs)

    @classmethod
    def var(cls, space: Space, name: str, coeff: int = 1) -> "AffExpr":
        coeffs = [0] * space.ncols
        coeffs[space.column_of(name)] = int(coeff)
        return cls(space, coeffs)

    @classmethod
    def from_terms(
        cls, space: Space, terms: Mapping[str, int], const: int = 0
    ) -> "AffExpr":
        coeffs = [0] * space.ncols
        for name, c in terms.items():
            coeffs[space.column_of(name)] += int(c)
        coeffs[-1] += int(const)
        return cls(space, coeffs)

    # -- accessors -------------------------------------------------------------

    def coeff_of(self, name: str) -> int:
        return self.coeffs[self.space.column_of(name)]

    @property
    def const_term(self) -> int:
        return self.coeffs[-1]

    def terms(self) -> dict[str, int]:
        """Nonzero named coefficients (constant excluded)."""
        return {
            name: self.coeffs[i]
            for i, name in enumerate(self.space.names)
            if self.coeffs[i] != 0
        }

    def is_constant(self) -> bool:
        return all(c == 0 for c in self.coeffs[:-1])

    def depends_on(self, name: str) -> bool:
        return self.coeff_of(name) != 0

    def evaluate(self, values: Mapping[str, int]) -> int:
        total = self.coeffs[-1]
        for i, name in enumerate(self.space.names):
            c = self.coeffs[i]
            if c:
                total += c * values[name]
        return total

    # -- arithmetic --------------------------------------------------------------

    def _coerce(self, other) -> "AffExpr":
        if isinstance(other, AffExpr):
            if other.space != self.space:
                raise ValueError("space mismatch in AffExpr arithmetic")
            return other
        if isinstance(other, int):
            return AffExpr.const(self.space, other)
        return NotImplemented  # pragma: no cover

    def __add__(self, other) -> "AffExpr":
        o = self._coerce(other)
        return AffExpr(self.space, [a + b for a, b in zip(self.coeffs, o.coeffs)])

    __radd__ = __add__

    def __sub__(self, other) -> "AffExpr":
        o = self._coerce(other)
        return AffExpr(self.space, [a - b for a, b in zip(self.coeffs, o.coeffs)])

    def __rsub__(self, other) -> "AffExpr":
        return self._coerce(other) - self

    def __neg__(self) -> "AffExpr":
        return AffExpr(self.space, [-a for a in self.coeffs])

    def __mul__(self, k: int) -> "AffExpr":
        return AffExpr(self.space, [a * int(k) for a in self.coeffs])

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AffExpr)
            and self.space == other.space
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.space, self.coeffs))

    def __reduce__(self):
        # Immutable __slots__ class: default unpickling would go through
        # __setattr__, which raises.  Rebuild through the constructor.
        return (AffExpr, (self.space, self.coeffs))

    # -- rebasing ------------------------------------------------------------------

    def rebase(self, target: Space, rename: Mapping[str, str] | None = None) -> "AffExpr":
        """Express this expression in ``target`` (a superspace), renaming dims."""
        rename = rename or {}
        terms = {
            rename.get(name, name): coeff for name, coeff in self.terms().items()
        }
        return AffExpr.from_terms(target, terms, self.const_term)

    def normalized(self) -> "AffExpr":
        """Divide by the GCD of all coefficients (sign preserved)."""
        g = 0
        for c in self.coeffs:
            g = gcd(g, abs(c))
        if g <= 1:
            return self
        return AffExpr(self.space, [c // g for c in self.coeffs])

    def __str__(self) -> str:
        parts = []
        for i, name in enumerate(self.space.names):
            c = self.coeffs[i]
            if c == 0:
                continue
            if c == 1:
                parts.append(f"+ {name}")
            elif c == -1:
                parts.append(f"- {name}")
            elif c > 0:
                parts.append(f"+ {c}{name}")
            else:
                parts.append(f"- {-c}{name}")
        if self.coeffs[-1] > 0:
            parts.append(f"+ {self.coeffs[-1]}")
        elif self.coeffs[-1] < 0:
            parts.append(f"- {-self.coeffs[-1]}")
        if not parts:
            return "0"
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else "-" + text[2:] if text.startswith("- ") else text

    __repr__ = __str__
