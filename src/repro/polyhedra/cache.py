"""Content-addressed memoization for the expensive polyhedral primitives.

Dependence analysis and the scheduler's satisfaction tracking issue the same
small queries — emptiness checks, integer minima of affine expressions,
lexmins, Fourier–Motzkin projections — over the same constraint systems many
times: once per happens-before case and access pair during analysis, then
again per schedule level, per diamond attempt, and once more in
``mark_parallelism``.  All of these queries are pure functions of the
constraint *content*, so they are memoized here behind a process-global
:class:`PolyCache` keyed on ``(space, constraint rows)`` — the polyhedral
analogue of the solver-side warm-start/dedup work (`repro.ilp`).

Keys are content-addressed, so no invalidation is ever needed: a mutated
:class:`~repro.polyhedra.sets.BasicSet` simply produces a new key.  The cache
is bounded: each table is an LRU holding at most ``max_entries`` entries
(default generous, override with ``REPRO_POLY_CACHE_CAP`` or the
``max_entries`` constructor argument), so long-running processes — the
serving daemon in particular — cannot grow without bound.  Evictions are
counted in :class:`PolyCacheStats` and surface as ``cache_evictions`` in
``DepStats``.

Escape hatch: ``REPRO_DEPS_NO_CACHE=1`` (or the :func:`cache_disabled`
context manager, used by ``--no-deps-cache``) disables both the memoization
and the cheap fast-reject pre-filter in :mod:`repro.polyhedra.fastcheck`,
reproducing the seed's uncached behavior bit for bit.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "PolyCacheStats",
    "PolyCache",
    "global_cache",
    "active_cache",
    "cache_enabled",
    "cache_disabled",
    "MISS",
]

#: Sentinel distinguishing "no cached entry" from a cached ``None`` result.
MISS = object()


@dataclass
class PolyCacheStats:
    """Hit/miss accounting per memoized primitive, plus fast-reject counts.

    ``fast_rejects`` is incremented by :mod:`repro.polyhedra.fastcheck` when
    the cheap bound/gcd pre-filter proves a system empty without any LP/ILP
    call; it lives here so one snapshot captures the whole fast path.
    ``evictions`` counts entries dropped by the per-table LRU bound.
    """

    empty_lookups: int = 0
    empty_hits: int = 0
    min_lookups: int = 0
    min_hits: int = 0
    lexmin_lookups: int = 0
    lexmin_hits: int = 0
    project_lookups: int = 0
    project_hits: int = 0
    fast_rejects: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return (
            self.empty_lookups
            + self.min_lookups
            + self.lexmin_lookups
            + self.project_lookups
        )

    @property
    def hits(self) -> int:
        return (
            self.empty_hits + self.min_hits + self.lexmin_hits + self.project_hits
        )

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    def snapshot(self) -> "PolyCacheStats":
        return PolyCacheStats(
            self.empty_lookups,
            self.empty_hits,
            self.min_lookups,
            self.min_hits,
            self.lexmin_lookups,
            self.lexmin_hits,
            self.project_lookups,
            self.project_hits,
            self.fast_rejects,
            self.evictions,
        )

    def delta_since(self, base: "PolyCacheStats") -> "PolyCacheStats":
        return PolyCacheStats(
            self.empty_lookups - base.empty_lookups,
            self.empty_hits - base.empty_hits,
            self.min_lookups - base.min_lookups,
            self.min_hits - base.min_hits,
            self.lexmin_lookups - base.lexmin_lookups,
            self.lexmin_hits - base.lexmin_hits,
            self.project_lookups - base.project_lookups,
            self.project_hits - base.project_hits,
            self.fast_rejects - base.fast_rejects,
            self.evictions - base.evictions,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "empty_lookups": self.empty_lookups,
            "empty_hits": self.empty_hits,
            "min_lookups": self.min_lookups,
            "min_hits": self.min_hits,
            "lexmin_lookups": self.lexmin_lookups,
            "lexmin_hits": self.lexmin_hits,
            "project_lookups": self.project_lookups,
            "project_hits": self.project_hits,
            "fast_rejects": self.fast_rejects,
            "evictions": self.evictions,
        }


#: per-table LRU capacity when neither the env override nor the constructor
#: argument is given; generous enough that single pipeline runs never evict
DEFAULT_MAX_ENTRIES = 200_000


def _default_max_entries() -> int:
    raw = os.environ.get("REPRO_POLY_CACHE_CAP", "")
    if raw:
        try:
            cap = int(raw)
            if cap >= 1:
                return cap
        except ValueError:
            pass
    return DEFAULT_MAX_ENTRIES


class PolyCache:
    """Memo tables for the polyhedral primitives, with stats.

    One table per primitive; every table is keyed on values derived from the
    constraint content (see ``BasicSet.content_key``), so entries never go
    stale.  Each table is an LRU bounded at ``max_entries``: a hit refreshes
    the entry, an insert past capacity evicts the least recently used —
    eviction can only cost recomputation, never change an answer.
    """

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = (
            _default_max_entries() if max_entries is None else max_entries
        )
        self.stats = PolyCacheStats()
        self._empty: OrderedDict = OrderedDict()
        self._min: OrderedDict = OrderedDict()
        self._lexmin: OrderedDict = OrderedDict()
        self._project: OrderedDict = OrderedDict()

    # -- generic plumbing -----------------------------------------------------

    def _get(self, table: OrderedDict, key, lookups: str, hits: str):
        setattr(self.stats, lookups, getattr(self.stats, lookups) + 1)
        value = table.get(key, MISS)
        if value is not MISS:
            setattr(self.stats, hits, getattr(self.stats, hits) + 1)
            table.move_to_end(key)
        return value

    def _put(self, table: OrderedDict, key, value) -> None:
        if key in table:
            table.move_to_end(key)
        else:
            while len(table) >= self.max_entries:
                table.popitem(last=False)
                self.stats.evictions += 1
        table[key] = value

    # -- per-primitive accessors ----------------------------------------------

    def get_empty(self, key):
        return self._get(self._empty, key, "empty_lookups", "empty_hits")

    def put_empty(self, key, value: bool) -> None:
        self._put(self._empty, key, value)

    def get_min(self, key):
        return self._get(self._min, key, "min_lookups", "min_hits")

    def put_min(self, key, value) -> None:
        self._put(self._min, key, value)

    def get_lexmin(self, key):
        return self._get(self._lexmin, key, "lexmin_lookups", "lexmin_hits")

    def put_lexmin(self, key, value) -> None:
        self._put(self._lexmin, key, value)

    def get_project(self, key):
        return self._get(self._project, key, "project_lookups", "project_hits")

    def put_project(self, key, value) -> None:
        self._put(self._project, key, value)

    def clear(self) -> None:
        """Drop every entry (stats are kept; reset them separately)."""
        self._empty.clear()
        self._min.clear()
        self._lexmin.clear()
        self._project.clear()

    def reset_stats(self) -> None:
        self.stats = PolyCacheStats()

    def __len__(self) -> int:
        return (
            len(self._empty)
            + len(self._min)
            + len(self._lexmin)
            + len(self._project)
        )


_GLOBAL = PolyCache()
_DISABLE_DEPTH = 0


def global_cache() -> PolyCache:
    """The process-wide cache instance (content-keyed, never stale)."""
    return _GLOBAL


def cache_enabled() -> bool:
    """Whether the fast path (memoization + fast-reject) is active."""
    if _DISABLE_DEPTH > 0:
        return False
    return os.environ.get("REPRO_DEPS_NO_CACHE", "") in ("", "0")


def active_cache() -> Optional[PolyCache]:
    """The global cache when enabled, else ``None`` (callers skip memo)."""
    return _GLOBAL if cache_enabled() else None


@contextmanager
def cache_disabled():
    """Temporarily disable the fast path (``--no-deps-cache``)."""
    global _DISABLE_DEPTH
    _DISABLE_DEPTH += 1
    try:
        yield
    finally:
        _DISABLE_DEPTH -= 1
