"""Fourier–Motzkin elimination over integer coefficient rows.

Operates on raw rows ``(coeffs, equality)`` where ``coeffs`` is a tuple over
some column order with the constant last — the same layout used by
:class:`~repro.polyhedra.affine.AffExpr`.  Working at the row level lets the
same routine serve set projection (:mod:`repro.polyhedra.sets`) and Farkas
multiplier elimination (:mod:`repro.core.farkas`), which use different spaces.

Elimination is rational (the standard FM shadow); for the purposes of this
system that is the right over-approximation: projections are used for loop
bound generation and for Farkas systems, both of which tolerate (indeed
expect) the rational shadow.  Rows are GCD-normalized and de-duplicated after
every elimination step, and pairwise-subsumption pruning keeps growth in
check on scheduler-sized systems.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, Sequence

__all__ = [
    "eliminate_column",
    "eliminate_columns",
    "normalize_row",
    "normalize_rows",
    "Row",
]

Row = tuple[tuple[int, ...], bool]  # (coefficients with constant last, equality?)


def _gcd_normalize(coeffs: Sequence[int], equality: bool) -> tuple[int, ...]:
    g = 0
    for c in coeffs[:-1]:
        g = gcd(g, abs(c))
    if g <= 1:
        return tuple(coeffs)
    if equality and coeffs[-1] % g != 0:
        return tuple(coeffs)  # integer-infeasible equality; keep visible
    return tuple(c // g for c in coeffs[:-1]) + (coeffs[-1] // g,)


def normalize_row(row: Row) -> Row | None:
    """GCD-normalize one row; ``None`` when it is trivially satisfied.

    Constant rows survive only as contradictions (emptiness witnesses) —
    the same policy :func:`normalize_rows` applies per row.  Used directly
    by the scheduler's constraint dedup, where rows arrive one at a time.
    """
    coeffs, equality = row
    norm = _gcd_normalize(coeffs, equality)
    if all(c == 0 for c in norm[:-1]):
        c = norm[-1]
        if (equality and c != 0) or (not equality and c < 0):
            return (norm, equality)
        return None
    return (norm, equality)


def normalize_rows(rows: Iterable[Row]) -> list[Row]:
    """GCD-normalize, drop trivial rows, and de-duplicate (order-preserving)."""
    seen: set[tuple[tuple[int, ...], bool]] = set()
    out: list[Row] = []
    for row in rows:
        norm = normalize_row(row)
        if norm is None or norm in seen:
            continue
        seen.add(norm)
        out.append(norm)
    return _prune_subsumed(out)


def _prune_subsumed(rows: list[Row]) -> list[Row]:
    """Drop inequality rows implied by another row with identical slope.

    ``a.x + c1 >= 0`` subsumes ``a.x + c2 >= 0`` when ``c1 <= c2``.
    """
    best: dict[tuple[int, ...], int] = {}
    eqs: list[Row] = []
    order: list[tuple[int, ...]] = []
    for coeffs, equality in rows:
        if equality:
            eqs.append((coeffs, equality))
            continue
        slope = coeffs[:-1]
        if slope in best:
            best[slope] = min(best[slope], coeffs[-1])
        else:
            best[slope] = coeffs[-1]
            order.append(slope)
    ineqs = [(slope + (best[slope],), False) for slope in order]
    return eqs + ineqs


def eliminate_column(rows: list[Row], col: int) -> list[Row]:
    """Eliminate one column (existential projection, rational shadow)."""
    # Prefer substitution through an equality containing the column.
    eq_row = None
    for coeffs, equality in rows:
        if equality and coeffs[col] != 0:
            eq_row = (coeffs, equality)
            break
    if eq_row is not None:
        e, _ = eq_row
        a = e[col]
        out: list[Row] = []
        for coeffs, equality in rows:
            if (coeffs, equality) == eq_row:
                continue
            b = coeffs[col]
            if b == 0:
                out.append((coeffs, equality))
                continue
            # a * row - b * eq_row eliminates the column; multiply so the
            # combined row keeps the inequality direction (scale by |a|).
            scale = abs(a)
            sign = 1 if a > 0 else -1
            combined = tuple(
                scale * rc - sign * b * ec for rc, ec in zip(coeffs, e)
            )
            out.append((combined, equality))
        return normalize_rows(out)

    lower: list[tuple[int, ...]] = []   # coeff > 0:  a x >= -rest
    upper: list[tuple[int, ...]] = []   # coeff < 0
    keep: list[Row] = []
    for coeffs, equality in rows:
        c = coeffs[col]
        if c == 0:
            keep.append((coeffs, equality))
        elif c > 0:
            lower.append(coeffs)
        else:
            upper.append(coeffs)

    for lo in lower:
        a = lo[col]
        for up in upper:
            b = -up[col]
            combined = tuple(b * lc + a * uc for lc, uc in zip(lo, up))
            keep.append((combined, False))
    return normalize_rows(keep)


def _elimination_cost(rows: list[Row], col: int) -> int:
    """Estimated row-count growth of eliminating ``col``.

    Substitution through an equality is free; otherwise the classic
    pos*neg - (pos+neg) estimate.
    """
    pos = neg = 0
    for coeffs, equality in rows:
        c = coeffs[col]
        if c == 0:
            continue
        if equality:
            return -len(rows)  # substitution: strictly shrinking
        if c > 0:
            pos += 1
        else:
            neg += 1
    return pos * neg - pos - neg


def eliminate_columns(
    rows: list[Row],
    cols: Sequence[int],
    prune_threshold: int = 0,
) -> list[Row]:
    """Eliminate several columns (existential projection).

    Columns are zeroed in place, not removed, so indices stay valid.  The
    elimination order is chosen greedily by the standard min-growth
    heuristic (equality substitutions first, then the column with the
    smallest ``pos*neg`` fan-out), which keeps the intermediate systems small
    on the Farkas systems this routine spends most of its time on.

    ``prune_threshold > 0`` enables LP-based redundancy elimination whenever
    an intermediate system exceeds that many rows — essential for deep
    projections (the code generator's scan systems over tiled diamond
    schedules), where plain FM cascades exponentially.
    """
    out = normalize_rows(rows)
    remaining = list(cols)
    while remaining:
        col = min(remaining, key=lambda c: _elimination_cost(out, c))
        remaining.remove(col)
        out = eliminate_column(out, col)
        if prune_threshold and len(out) > prune_threshold:
            out = prune_redundant_rows(out)
    return out


def prune_redundant_rows(rows: list[Row]) -> list[Row]:
    """Drop inequality rows implied by the remaining system (rational test).

    Each inequality ``a.x + c >= 0`` is redundant iff ``min(a.x)`` over the
    other rows is ``>= -c``; decided with HiGHS.  Dropping a weakly-touching
    row keeps the same rational set; in the presence of floating-point
    tolerance the result can only be an *over*-approximation of the
    projection, which every consumer of deep projections (loop bounds,
    guards) tolerates by construction — inner levels re-check exact
    constraints pointwise.
    """
    import numpy as np
    from scipy import optimize

    eqs = [r for r in rows if r[1]]
    ineqs = [r for r in rows if not r[1]]
    if len(ineqs) <= 1:
        return rows
    width = len(rows[0][0]) - 1

    kept = list(ineqs)
    i = 0
    while i < len(kept):
        coeffs, _ = kept[i]
        others = eqs + kept[:i] + kept[i + 1 :]
        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for ocoeffs, oeq in others:
            row = np.array(ocoeffs[:-1], dtype=float)
            if oeq:
                a_eq.append(row)
                b_eq.append(-float(ocoeffs[-1]))
            else:
                a_ub.append(-row)
                b_ub.append(float(ocoeffs[-1]))
        res = optimize.linprog(
            c=np.array(coeffs[:-1], dtype=float),
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=[(None, None)] * width,
            method="highs",
        )
        if res.status == 0 and res.fun + coeffs[-1] >= -1e-9:
            kept.pop(i)  # implied by the others
        else:
            i += 1
    return eqs + kept
