"""Integer sets bounded by affine constraints (index sets, dependence polyhedra).

:class:`BasicSet` is a conjunction of constraints over a
:class:`~repro.polyhedra.affine.Space`; :class:`UnionSet` is a finite union of
basic sets sharing a space (produced by index-set splitting).  Emptiness,
lexmin and expression-minimum queries are answered through the exact ILP
stack (:mod:`repro.ilp`), so answers on integer points are exact.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Mapping, Optional, Sequence

from repro.ilp import ILPModel, ILPStatus, lexmin as ilp_lexmin, solve_ilp
from repro.ilp.highs_backend import solve_ilp_highs
from repro.polyhedra.affine import AffExpr, Space
from repro.polyhedra.cache import MISS as MISS_, active_cache
from repro.polyhedra.constraints import Constraint
from repro.polyhedra.fourier_motzkin import Row, eliminate_columns, normalize_rows

__all__ = ["BasicSet", "UnionSet"]

#: cache marker for "min_of raised ValueError (unbounded direction)"
_UNBOUNDED = object()


class BasicSet:
    """The integer points satisfying a conjunction of affine constraints."""

    def __init__(self, space: Space, constraints: Iterable[Constraint] = ()):
        self.space = space
        self.constraints: list[Constraint] = []
        self._conset: set[Constraint] = set()
        self._key: Optional[tuple] = None
        self._key_n = -1
        for con in constraints:
            self.add(con)

    # -- construction ---------------------------------------------------------

    @classmethod
    def universe(cls, space: Space) -> "BasicSet":
        return cls(space)

    @classmethod
    def from_bounds(
        cls,
        space: Space,
        bounds: Mapping[str, tuple],
    ) -> "BasicSet":
        """Box-style constructor: ``bounds[dim] = (lb_expr, ub_expr)``.

        Each bound may be an int, a dim/param name, or an :class:`AffExpr`;
        the set is ``lb <= dim <= ub`` for every entry.
        """
        bs = cls(space)
        for name, (lb, ub) in bounds.items():
            d = AffExpr.var(space, name)
            bs.add(Constraint(d - _as_expr(space, lb)))
            bs.add(Constraint(_as_expr(space, ub) - d))
        return bs

    def add(self, con: Constraint) -> None:
        if con.space != self.space:
            con = con.rebase(self.space)
        if con.is_trivial():
            return
        if con not in self._conset:
            self.constraints.append(con)
            self._conset.add(con)

    def copy(self) -> "BasicSet":
        out = BasicSet(self.space)
        out.constraints = list(self.constraints)
        out._conset = set(self._conset)
        return out

    def content_key(self) -> tuple:
        """Hashable content identity: the space plus the constraint rows.

        Order-insensitive (constraints are a conjunction), so syntactically
        reordered but identical systems share memo entries.  ``add`` only
        ever appends, so the constraint count is a valid staleness token for
        the lazily computed key.
        """
        if self._key is None or self._key_n != len(self.constraints):
            rows = frozenset((c.coeffs, c.equality) for c in self.constraints)
            self._key = (self.space, rows)
            self._key_n = len(self.constraints)
        return self._key

    def intersect(self, other: "BasicSet") -> "BasicSet":
        out = self.copy()
        for con in other.constraints:
            out.add(con)
        return out

    def rebase(self, target: Space, rename: Mapping[str, str] | None = None) -> "BasicSet":
        out = BasicSet(target)
        for con in self.constraints:
            out.add(con.rebase(target, rename))
        return out

    # -- queries ----------------------------------------------------------------

    def contains(self, values: Mapping[str, int]) -> bool:
        return all(con.is_satisfied(values) for con in self.constraints)

    def _to_rows(self) -> list[Row]:
        return [(con.coeffs, con.equality) for con in self.constraints]

    def _build_model(self) -> ILPModel:
        model = ILPModel()
        for name in self.space.names:
            model.add_variable(name, lower=None)
        for con in self.constraints:
            terms = con.expr.terms()
            model.add_constraint(terms, con.expr.const_term, con.equality)
        return model

    def _solve(self, objective) -> object:
        """Integer optimization over the set.

        HiGHS decides these tiny integer-coefficient systems quickly and its
        rounded solutions are verified against the model; the pure-Python
        exact branch-and-bound is the fallback when HiGHS declines to answer
        (it is orders of magnitude slower, so it is not the first choice).
        """
        model = self._build_model()
        res = solve_ilp_highs(model, objective)
        if res.status in (ILPStatus.OPTIMAL, ILPStatus.INFEASIBLE, ILPStatus.UNBOUNDED):
            return res
        return solve_ilp(model, objective)  # pragma: no cover - defensive

    def is_empty(self) -> bool:
        """Exact integer emptiness (memoized on the constraint content)."""
        if any(con.is_contradiction() for con in self.constraints):
            return True
        cache = active_cache()
        if cache is None:
            return self._solve({}).status == ILPStatus.INFEASIBLE
        key = self.content_key()
        hit = cache.get_empty(key)
        if hit is not MISS_:
            return hit
        empty = self._solve({}).status == ILPStatus.INFEASIBLE
        cache.put_empty(key, empty)
        return empty

    def min_of(self, expr: AffExpr) -> Optional[Fraction]:
        """Integer minimum of ``expr`` over the set (memoized).

        Returns ``None`` when the set is empty; raises on an unbounded
        direction (callers ask about bounded quantities only).
        """
        cache = active_cache()
        key = None
        if cache is not None:
            key = (self.content_key(), expr.coeffs)
            hit = cache.get_min(key)
            if hit is not MISS_:
                if hit is _UNBOUNDED:
                    raise ValueError(f"min of {expr} is unbounded over {self}")
                return hit
        res = self._solve(expr.terms())
        if res.status == ILPStatus.INFEASIBLE:
            value = None
        elif res.status == ILPStatus.UNBOUNDED:
            if cache is not None:
                cache.put_min(key, _UNBOUNDED)
            raise ValueError(f"min of {expr} is unbounded over {self}")
        else:
            value = res.objective + expr.const_term
        if cache is not None:
            cache.put_min(key, value)
        return value

    def max_of(self, expr: AffExpr) -> Optional[Fraction]:
        m = self.min_of(-expr)
        return None if m is None else -m

    def lexmin_point(self) -> Optional[dict[str, int]]:
        """Lexicographically smallest integer point (dims order), memoized."""
        cache = active_cache()
        key = None
        if cache is not None:
            key = self.content_key()
            hit = cache.get_lexmin(key)
            if hit is not MISS_:
                return dict(hit) if hit is not None else None
        model = self._build_model()
        model.set_objective_order(list(self.space.dims))
        res = ilp_lexmin(model, backend="highs")
        point = None
        if res.is_optimal:
            point = {d: int(res.assignment[d]) for d in self.space.dims}
        if cache is not None:
            cache.put_lexmin(key, dict(point) if point is not None else None)
        return point

    def sample_point(self) -> Optional[dict[str, int]]:
        point = self.lexmin_point()
        return point

    def project_out(self, names: Sequence[str]) -> "BasicSet":
        """Existentially project out the named dims (rational FM shadow).

        Deep projections (code generation) enable LP-based redundancy
        pruning so the FM cascade stays polynomial in practice.  Results are
        memoized on ``(content, projected names)`` — identical scan systems
        recur across tiles/statements, and each hit saves a full FM cascade.
        """
        cache = active_cache()
        key = None
        if cache is not None:
            key = (self.content_key(), tuple(names))
            hit = cache.get_project(key)
            if hit is not MISS_:
                out = BasicSet(hit.space)
                out.constraints = list(hit.constraints)
                out._conset = set(hit._conset)
                return out
        cols = [self.space.column_of(n) for n in names]
        rows = eliminate_columns(self._to_rows(), cols, prune_threshold=40)
        new_space = self.space.drop_dims(names)
        out = BasicSet(new_space)
        keep_cols = [
            i
            for i, _ in enumerate(self.space.names)
            if self.space.names[i] not in set(names)
        ] + [self.space.const_col]
        for coeffs, equality in rows:
            assert all(coeffs[c] == 0 for c in cols)
            sub = tuple(coeffs[i] for i in keep_cols)
            out.add(Constraint(AffExpr(new_space, sub), equality))
        if cache is not None:
            cache.put_project(key, out.copy())
        return out

    def bounds_for(self, name: str) -> tuple[list[tuple[AffExpr, int]], list[tuple[AffExpr, int]]]:
        """Per-constraint bounds on ``name`` in terms of the other columns.

        Returns ``(lowers, uppers)``: each entry ``(expr, k)`` means
        ``name >= ceil(expr / k)`` (lowers) or ``name <= floor(expr / k)``
        (uppers), with ``expr`` not involving ``name`` and ``k >= 1``.
        Equalities contribute to both lists.
        """
        col = self.space.column_of(name)
        lowers: list[tuple[AffExpr, int]] = []
        uppers: list[tuple[AffExpr, int]] = []
        for con in self.constraints:
            a = con.coeffs[col]
            if a == 0:
                continue
            rest = list(con.coeffs)
            rest[col] = 0
            rest_expr = AffExpr(self.space, rest)
            if con.equality:
                # a*name + rest == 0  ->  name bounded both ways by -rest/a
                if a > 0:
                    lowers.append((-rest_expr, a))
                    uppers.append((-rest_expr, a))
                else:
                    lowers.append((rest_expr, -a))
                    uppers.append((rest_expr, -a))
            elif a > 0:
                # a*name + rest >= 0  ->  name >= ceil(-rest / a)
                lowers.append((-rest_expr, a))
            else:
                # a*name + rest >= 0, a < 0  ->  name <= floor(rest / -a)
                uppers.append((rest_expr, -a))
        return lowers, uppers

    def enumerate_points(
        self, param_values: Mapping[str, int], limit: int = 1_000_000
    ) -> list[tuple[int, ...]]:
        """All integer points (dims order) for fixed parameter values.

        Intended for validation at small sizes; raises if more than ``limit``
        candidate points would be scanned.
        """
        fixed = dict(param_values)
        box: list[range] = []
        work = self.copy()
        for p in self.space.params:
            if p not in fixed:
                raise KeyError(f"missing value for parameter {p!r}")
        # Constrain params to their fixed values, then compute per-dim ranges.
        for p, v in fixed.items():
            work.add(
                Constraint(
                    AffExpr.var(self.space, p) - AffExpr.const(self.space, v),
                    equality=True,
                )
            )
        for d in self.space.dims:
            lo = work.min_of(AffExpr.var(self.space, d))
            if lo is None:
                return []
            hi = work.max_of(AffExpr.var(self.space, d))
            box.append(range(int(lo), int(hi) + 1))
        total = 1
        for r in box:
            total *= max(len(r), 1)
            if total > limit:
                raise ValueError("enumeration box too large")
        points = []
        for combo in itertools.product(*box):
            values = dict(zip(self.space.dims, combo))
            values.update(fixed)
            if self.contains(values):
                points.append(combo)
        return points

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BasicSet)
            and self.space == other.space
            and set(self.constraints) == set(other.constraints)
        )

    def __str__(self) -> str:
        cons = " and ".join(str(c) for c in self.constraints) or "true"
        return f"{{ {self.space} : {cons} }}"

    __repr__ = __str__


class UnionSet:
    """A finite union of basic sets over one space (e.g. after ISS)."""

    def __init__(self, parts: Sequence[BasicSet]):
        if not parts:
            raise ValueError("UnionSet needs at least one part")
        space = parts[0].space
        for p in parts:
            if p.space != space:
                raise ValueError("UnionSet parts must share a space")
        self.space = space
        self.parts = list(parts)

    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.parts)

    def contains(self, values: Mapping[str, int]) -> bool:
        return any(p.contains(values) for p in self.parts)

    def intersect_basic(self, bs: BasicSet) -> "UnionSet":
        return UnionSet([p.intersect(bs) for p in self.parts])

    def __len__(self) -> int:
        return len(self.parts)

    def __iter__(self):
        return iter(self.parts)

    def __str__(self) -> str:
        return " u ".join(str(p) for p in self.parts)


def _as_expr(space: Space, value) -> AffExpr:
    if isinstance(value, AffExpr):
        return value
    if isinstance(value, int):
        return AffExpr.const(space, value)
    if isinstance(value, str):
        return AffExpr.var(space, value)
    raise TypeError(f"cannot interpret {value!r} as an affine expression")
