"""The data dependence graph and its strongly connected components.

The scheduler's fusion/cutting logic (Pluto's ``smartfuse``) operates on the
DDG condensation: statements in one SCC must share hyperplanes, while edges
between different SCCs can be satisfied "for free" by a scalar schedule
dimension that orders the SCCs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import networkx as nx

from repro.deps.analysis import Dependence, DepStats
from repro.frontend.ir import Program, Statement

__all__ = ["DependenceGraph"]


class DependenceGraph:
    """DDG over statements with dependence-labelled edges.

    ``stats`` (optional) carries the :class:`DepStats` record of the analysis
    that produced ``deps``, so downstream reporting can show the fast-path
    counters next to the graph.
    """

    def __init__(
        self,
        program: Program,
        deps: Sequence[Dependence],
        stats: Optional[DepStats] = None,
    ):
        self.program = program
        self.deps = list(deps)
        self.dep_stats = stats
        self.graph = nx.MultiDiGraph()
        for s in program.statements:
            self.graph.add_node(s.name)
        for d in self.deps:
            self.graph.add_edge(d.source.name, d.target.name, dep=d)

    # -- queries -------------------------------------------------------------

    def unsatisfied(self) -> list[Dependence]:
        return [d for d in self.deps if not d.is_satisfied]

    def inter_statement(self) -> list[Dependence]:
        return [d for d in self.deps if d.source is not d.target]

    def sccs(self, restrict_to_unsatisfied: bool = True) -> list[list[Statement]]:
        """SCCs in a stable topological order of the condensation.

        When ``restrict_to_unsatisfied`` is set, only edges whose dependence
        is still unsatisfied contribute to connectivity — satisfied edges no
        longer force statements to stay fused.
        """
        g = nx.MultiDiGraph()
        g.add_nodes_from(self.graph.nodes)
        for d in self.deps:
            if restrict_to_unsatisfied and d.is_satisfied:
                continue
            g.add_edge(d.source.name, d.target.name)
        comp = list(nx.strongly_connected_components(g))
        cond = nx.condensation(g, comp)
        order = list(nx.topological_sort(cond))
        name_to_stmt = {s.name: s for s in self.program.statements}
        out: list[list[Statement]] = []
        for idx in order:
            members = sorted(
                cond.nodes[idx]["members"],
                key=lambda n: self.program.statements.index(name_to_stmt[n]),
            )
            out.append([name_to_stmt[n] for n in members])
        return out

    def deps_between(
        self, a: Iterable[Statement], b: Iterable[Statement]
    ) -> list[Dependence]:
        a_names = {s.name for s in a}
        b_names = {s.name for s in b}
        return [
            d
            for d in self.deps
            if d.source.name in a_names and d.target.name in b_names
        ]

    def mark_cut_satisfied(self, scc_index: dict[str, int]) -> int:
        """Mark unsatisfied cross-SCC edges as satisfied by an ordering cut.

        ``scc_index`` maps statement name to its position in the SCC order;
        edges from a lower position to a strictly higher one are satisfied by
        the scalar dimension that encodes that order.  Returns the number of
        newly satisfied dependences.
        """
        n = 0
        for d in self.unsatisfied():
            if scc_index[d.source.name] < scc_index[d.target.name]:
                d.satisfied_by_cut = True
                n += 1
        return n

    def reset(self) -> None:
        for d in self.deps:
            d.reset()

    def __len__(self) -> int:
        return len(self.deps)

    def __str__(self) -> str:
        return (
            f"DDG({self.graph.number_of_nodes()} stmts, {len(self.deps)} deps, "
            f"{len(self.unsatisfied())} unsatisfied)"
        )
