"""Data dependence analysis.

For every ordered pair of accesses to the same array (write→read = RAW,
read→write = WAR, write→write = WAW) and every happens-before case of the
original 2d+1 schedules, a dependence polyhedron is built over the product
space ``(source iters, target iters, params)`` and kept when non-empty.

This yields *memory-based* dependences — a sound superset of the value-based
(``--lastwriter``) dependences the paper's toolchain computes with ISL.  For
the regular affine kernels evaluated (Polybench, stencils, LBM) the extra
transitively-covered edges constrain the same hyperplanes, so the scheduler's
choices match; DESIGN.md records this substitution.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.frontend.ir import Access, Program, Statement
from repro.polyhedra import AffExpr, BasicSet, Constraint, Space
from repro.polyhedra.cache import global_cache
from repro.polyhedra.fastcheck import set_is_empty

__all__ = ["DepStats", "Dependence", "compute_dependences", "product_space"]

SRC_SUFFIX = "__s"
TGT_SUFFIX = "__t"


@dataclass
class DepStats:
    """Fast-path counters for dependence analysis (the ``SolveStats`` twin).

    ``pairs_tested`` counts candidate dependence polyhedra (access pair ×
    happens-before case); ``fast_rejects`` those proven empty by the cheap
    bound/gcd pre-filter alone; ``cache_hits``/``cache_misses`` the memoized
    polyhedral primitive lookups (emptiness, minima, lexmin, projections)
    issued while this record was attached; ``fm_saved`` the Fourier–Motzkin
    projection cascades answered from cache; ``cache_evictions`` the memo
    entries dropped by the LRU bound while attached; ``analysis_seconds``
    wall time inside :func:`compute_dependences`.
    """

    pairs_tested: int = 0
    deps_found: int = 0
    fast_rejects: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    fm_saved: int = 0
    cache_evictions: int = 0
    analysis_seconds: float = 0.0
    #: RAR (read-after-read) relations found by :mod:`repro.deps.rar`;
    #: counted separately from ``deps_found`` because they never enter the
    #: legality set.  Zero unless ``PipelineOptions.rar`` is enabled.
    rar_deps: int = 0

    @property
    def lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    def merge(self, other: "DepStats") -> None:
        self.pairs_tested += other.pairs_tested
        self.deps_found += other.deps_found
        self.fast_rejects += other.fast_rejects
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.fm_saved += other.fm_saved
        self.cache_evictions += other.cache_evictions
        self.analysis_seconds += other.analysis_seconds
        self.rar_deps += other.rar_deps

    @classmethod
    def from_dict(cls, data: dict) -> "DepStats":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})

    def as_dict(self) -> dict[str, float]:
        out = {
            "pairs_tested": self.pairs_tested,
            "deps_found": self.deps_found,
            "fast_rejects": self.fast_rejects,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "fm_saved": self.fm_saved,
            "cache_evictions": self.cache_evictions,
            "analysis_seconds": self.analysis_seconds,
        }
        # Omitted at zero so records written with RAR off (including every
        # pre-RAR manifest) keep their exact historical shape.
        if self.rar_deps:
            out["rar_deps"] = self.rar_deps
        return out


@dataclass
class Dependence:
    """One dependence edge with its polyhedron.

    ``polyhedron`` lives in the product space; ``src_rename``/``tgt_rename``
    map original iterator names of source/target statements into it.
    ``satisfaction_level`` is filled in by the scheduler: the depth at which
    the dependence became strongly satisfied.
    """

    source: Statement
    target: Statement
    kind: str                      # "raw" | "war" | "waw" | "rar" (locality-only)
    array: str
    polyhedron: BasicSet
    src_rename: dict[str, str]
    tgt_rename: dict[str, str]
    satisfaction_level: Optional[int] = None
    satisfied_by_cut: bool = False

    @property
    def space(self) -> Space:
        return self.polyhedron.space

    @property
    def is_satisfied(self) -> bool:
        return self.satisfaction_level is not None or self.satisfied_by_cut

    def reset(self) -> None:
        self.satisfaction_level = None
        self.satisfied_by_cut = False

    def distance_expr(self, phi_src: AffExpr, phi_tgt: AffExpr) -> AffExpr:
        """``phi_tgt(t) - phi_src(s)`` in the product space.

        ``phi_src``/``phi_tgt`` are affine expressions over the statements'
        own spaces; they are rebased through the product renames.
        """
        space = self.space
        t = phi_tgt.rebase(space, self.tgt_rename)
        s = phi_src.rebase(space, self.src_rename)
        return t - s

    def min_distance(self, phi_src: AffExpr, phi_tgt: AffExpr):
        """Exact integer minimum of the dependence distance (None if empty)."""
        return self.polyhedron.min_of(self.distance_expr(phi_src, phi_tgt))

    def is_uniform(self) -> bool:
        """True when the dependence fixes ``t - s`` to a constant vector."""
        return self.distance_vector() is not None

    def distance_vector(self) -> Optional[tuple[int, ...]]:
        """The constant distance vector for uniform self-dependences."""
        if self.source.space.dims != self.target.space.dims:
            return None
        out = []
        for it in self.source.space.dims:
            d = AffExpr.var(self.space, self.tgt_rename[it]) - AffExpr.var(
                self.space, self.src_rename[it]
            )
            try:
                lo = self.polyhedron.min_of(d)
                hi = self.polyhedron.max_of(d)
            except ValueError:
                return None  # parametric (unbounded) distance: not uniform
            if lo is None or lo != hi:
                return None
            out.append(int(lo))
        return tuple(out)

    def __str__(self) -> str:
        return (
            f"{self.kind.upper()} {self.source.name} -> {self.target.name} "
            f"on {self.array}"
        )

    __repr__ = __str__


def product_space(src: Statement, tgt: Statement) -> tuple[Space, dict, dict]:
    """Product space of two statements with disjoint renamed iterators."""
    src_rename = {it: it + SRC_SUFFIX for it in src.space.dims}
    tgt_rename = {it: it + TGT_SUFFIX for it in tgt.space.dims}
    dims = tuple(src_rename[i] for i in src.space.dims) + tuple(
        tgt_rename[i] for i in tgt.space.dims
    )
    return Space(dims, src.space.params), src_rename, tgt_rename


def _happens_before_cases(
    src: Statement, tgt: Statement, space: Space, src_rename, tgt_rename
) -> Iterable[list[Constraint]]:
    """Constraint conjunctions under which ``src`` instance executes before
    ``tgt`` instance, split by the first schedule level that decides order."""
    a, b = src.sched, tgt.sched
    prefix_eqs: list[Constraint] = []
    for level in range(max(len(a), len(b))):
        ea = a[level] if level < len(a) else None
        eb = b[level] if level < len(b) else None
        if ea is None or eb is None:
            # One schedule is a strict prefix of the other: same scalar
            # position so far — the shorter one is "at" this point.  With the
            # 2d+1 form both schedules end in a scalar, so lengths only
            # differ when nesting depth differs; order was already decided by
            # an earlier scalar, hence no further case here.
            return
        scalar_a = isinstance(ea, int)
        scalar_b = isinstance(eb, int)
        if scalar_a and scalar_b:
            if ea < eb:
                yield list(prefix_eqs)
                return
            if ea > eb:
                return
            continue
        if scalar_a != scalar_b:
            # Structurally impossible under a common prefix (a loop vs a
            # statement position at the same level): treat like unordered.
            return
        sa = ea.rebase(space, src_rename)
        sb = eb.rebase(space, tgt_rename)
        yield prefix_eqs + [Constraint(sb - sa - 1)]  # strictly before here
        prefix_eqs = prefix_eqs + [Constraint(sb - sa, equality=True)]
    # All levels equal: same instance — never a dependence by itself.
    return


def _access_pairs(src: Statement, tgt: Statement):
    for w in src.writes:
        for r in tgt.reads:
            if w.array == r.array:
                yield "raw", w, r
    for r in src.reads:
        for w in tgt.writes:
            if r.array == w.array:
                yield "war", r, w
    for w1 in src.writes:
        for w2 in tgt.writes:
            if w1.array == w2.array:
                yield "waw", w1, w2


def _dependence_polyhedron(
    program: Program,
    src: Statement,
    tgt: Statement,
    acc_s: Access,
    acc_t: Access,
    case: list[Constraint],
    space: Space,
    src_rename,
    tgt_rename,
) -> BasicSet:
    """One candidate polyhedron, built from scratch (reference path).

    :func:`compute_dependences` builds the same conjunctions incrementally
    (domains hoisted per statement pair, conflict equalities per access
    pair); this standalone builder is kept as the executable specification
    the incremental construction is tested against.
    """
    poly = BasicSet(space)
    for con in src.domain.constraints:
        poly.add(con.rebase(space, src_rename))
    for con in tgt.domain.constraints:
        poly.add(con.rebase(space, tgt_rename))
    if acc_s.guard is not None:
        for con in acc_s.guard.constraints:
            poly.add(con.rebase(space, src_rename))
    if acc_t.guard is not None:
        for con in acc_t.guard.constraints:
            poly.add(con.rebase(space, tgt_rename))
    # conflict: both touch the same array cell
    for es, et in zip(acc_s.map.exprs, acc_t.map.exprs):
        poly.add(
            Constraint(
                et.rebase(space, tgt_rename) - es.rebase(space, src_rename),
                equality=True,
            )
        )
    for con in case:
        poly.add(con)
    for con in program.context_constraints(space):
        poly.add(con)
    return poly


def compute_dependences(
    program: Program, stats: Optional[DepStats] = None
) -> list[Dependence]:
    """All memory-based RAW/WAR/WAW dependences of ``program``.

    The per-candidate polyhedra share most of their rows (statement domains,
    the parameter context), so those are rebased once per statement pair and
    the access-pair / happens-before-case specifics are layered on copies —
    the construction-side half of the fast path, the query side being
    :func:`~repro.polyhedra.fastcheck.set_is_empty`'s fast-reject and memo.
    ``stats``, when given, accumulates :class:`DepStats` counters.
    """
    t_start = time.perf_counter()
    cache_stats = global_cache().stats
    base_snapshot = cache_stats.snapshot()
    deps: list[Dependence] = []
    pairs_tested = 0
    for src, tgt in itertools.product(program.statements, repeat=2):
        space, src_rename, tgt_rename = product_space(src, tgt)
        cases = list(
            _happens_before_cases(src, tgt, space, src_rename, tgt_rename)
        )
        if not cases:
            continue
        pair_base: Optional[BasicSet] = None
        for kind, acc_s, acc_t in _access_pairs(src, tgt):
            if pair_base is None:
                pair_base = BasicSet(space)
                for con in src.domain.constraints:
                    pair_base.add(con.rebase(space, src_rename))
                for con in tgt.domain.constraints:
                    pair_base.add(con.rebase(space, tgt_rename))
                for con in program.context_constraints(space):
                    pair_base.add(con)
            acc_base = pair_base.copy()
            if acc_s.guard is not None:
                for con in acc_s.guard.constraints:
                    acc_base.add(con.rebase(space, src_rename))
            if acc_t.guard is not None:
                for con in acc_t.guard.constraints:
                    acc_base.add(con.rebase(space, tgt_rename))
            for es, et in zip(acc_s.map.exprs, acc_t.map.exprs):
                acc_base.add(
                    Constraint(
                        et.rebase(space, tgt_rename)
                        - es.rebase(space, src_rename),
                        equality=True,
                    )
                )
            for case in cases:
                poly = acc_base.copy()
                for con in case:
                    poly.add(con)
                pairs_tested += 1
                if set_is_empty(poly):
                    continue
                deps.append(
                    Dependence(
                        source=src,
                        target=tgt,
                        kind=kind,
                        array=acc_s.array,
                        polyhedron=poly,
                        src_rename=src_rename,
                        tgt_rename=tgt_rename,
                    )
                )
    if stats is not None:
        delta = cache_stats.delta_since(base_snapshot)
        stats.pairs_tested += pairs_tested
        stats.deps_found += len(deps)
        stats.fast_rejects += delta.fast_rejects
        stats.cache_hits += delta.hits
        stats.cache_misses += delta.misses
        stats.fm_saved += delta.project_hits
        stats.cache_evictions += delta.evictions
        stats.analysis_seconds += time.perf_counter() - t_start
    return deps
