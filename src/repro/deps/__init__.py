"""Dependence analysis: polyhedral RAW/WAR/WAW edges and the DDG."""

from repro.deps.analysis import (
    Dependence,
    DepStats,
    compute_dependences,
    product_space,
)
from repro.deps.ddg import DependenceGraph

__all__ = [
    "DepStats",
    "Dependence",
    "DependenceGraph",
    "compute_dependences",
    "product_space",
]
