"""Read-after-read (RAR) relations: a locality signal, never a constraint.

Two reads of the same array cell carry no ordering requirement, so classic
dependence analysis (:mod:`repro.deps.analysis`) ignores them.  They do
carry *reuse*: scheduling both accesses close together keeps the cell hot
in cache.  Kong & Pouchet ("A Performance Vocabulary for Affine Loop
Transformations") motivate treating this read-read reuse as a first-class
locality term, which is exactly how PLUTO+'s objective already treats the
distance of real dependences — eq. (3) bounds every dependence distance by
``u.p + w`` and the lexmin objective drives ``u, w`` down.

This module computes RAR relations with the same access-pair machinery as
the real dependences (product space, happens-before case split, incremental
polyhedron construction, fast-reject emptiness), tagged ``kind="rar"``.
The scheduler adds *only* their Farkas bounding rows to the per-band model
— they participate in the locality objective and nothing else.  They are
never handed to the dependence graph: legality, satisfaction tracking, SCC
cuts, and parallelism marking do not see them, so enabling ``rar`` can
steer the objective between equally-legal schedules but can never make an
illegal one legal (property-tested in ``tests/deps/test_rar.py``).
"""

from __future__ import annotations

import itertools
import time
from typing import Optional

from repro.deps.analysis import (
    Dependence,
    DepStats,
    _happens_before_cases,
    product_space,
)
from repro.polyhedra import BasicSet, Constraint
from repro.polyhedra.cache import global_cache
from repro.polyhedra.fastcheck import set_is_empty

__all__ = ["compute_rar_dependences"]


def _read_pairs(src, tgt):
    for r1 in src.reads:
        for r2 in tgt.reads:
            if r1.array == r2.array:
                yield r1, r2


def compute_rar_dependences(
    program, stats: Optional[DepStats] = None
) -> list[Dependence]:
    """All non-empty RAR relations of ``program`` (``kind == "rar"``).

    Mirrors :func:`repro.deps.analysis.compute_dependences` — domains and
    the parameter context hoisted per statement pair, conflict equalities
    per access pair, happens-before cases layered on copies — restricted to
    read×read access pairs.  ``stats``, when given, accumulates the same
    fast-path counters plus the dedicated ``rar_deps`` count.
    """
    t_start = time.perf_counter()
    cache_stats = global_cache().stats
    base_snapshot = cache_stats.snapshot()
    deps: list[Dependence] = []
    pairs_tested = 0
    for src, tgt in itertools.product(program.statements, repeat=2):
        space, src_rename, tgt_rename = product_space(src, tgt)
        cases = list(
            _happens_before_cases(src, tgt, space, src_rename, tgt_rename)
        )
        if not cases:
            continue
        pair_base: Optional[BasicSet] = None
        for acc_s, acc_t in _read_pairs(src, tgt):
            if pair_base is None:
                pair_base = BasicSet(space)
                for con in src.domain.constraints:
                    pair_base.add(con.rebase(space, src_rename))
                for con in tgt.domain.constraints:
                    pair_base.add(con.rebase(space, tgt_rename))
                for con in program.context_constraints(space):
                    pair_base.add(con)
            acc_base = pair_base.copy()
            if acc_s.guard is not None:
                for con in acc_s.guard.constraints:
                    acc_base.add(con.rebase(space, src_rename))
            if acc_t.guard is not None:
                for con in acc_t.guard.constraints:
                    acc_base.add(con.rebase(space, tgt_rename))
            for es, et in zip(acc_s.map.exprs, acc_t.map.exprs):
                acc_base.add(
                    Constraint(
                        et.rebase(space, tgt_rename)
                        - es.rebase(space, src_rename),
                        equality=True,
                    )
                )
            for case in cases:
                poly = acc_base.copy()
                for con in case:
                    poly.add(con)
                pairs_tested += 1
                if set_is_empty(poly):
                    continue
                deps.append(
                    Dependence(
                        source=src,
                        target=tgt,
                        kind="rar",
                        array=acc_s.array,
                        polyhedron=poly,
                        src_rename=src_rename,
                        tgt_rename=tgt_rename,
                    )
                )
    if stats is not None:
        delta = cache_stats.delta_since(base_snapshot)
        stats.pairs_tested += pairs_tested
        stats.rar_deps += len(deps)
        stats.fast_rejects += delta.fast_rejects
        stats.cache_hits += delta.hits
        stats.cache_misses += delta.misses
        stats.fm_saved += delta.project_hits
        stats.cache_evictions += delta.evictions
        stats.analysis_seconds += time.perf_counter() - t_start
    return deps
