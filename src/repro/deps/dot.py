"""Graphviz (DOT) rendering of dependence graphs.

Handy for inspecting why a fusion/cut decision happened or which wraparound
arcs block tiling: statements become nodes (colored by SCC), dependences
become edges labeled with kind and distance vector (when uniform).

    python -c "from repro.deps.dot import ddg_to_dot; ..." | dot -Tpdf ...
"""

from __future__ import annotations

from repro.deps.ddg import DependenceGraph

__all__ = ["ddg_to_dot"]

_KIND_STYLE = {
    "raw": ("solid", "black"),
    "war": ("dashed", "blue"),
    "waw": ("dotted", "red"),
}

_SCC_COLORS = (
    "lightblue", "lightyellow", "lightpink", "lightgreen",
    "lavender", "mistyrose", "honeydew", "aliceblue",
)


def ddg_to_dot(ddg: DependenceGraph, include_distances: bool = True) -> str:
    """Render the DDG as DOT text."""
    lines = [
        "digraph ddg {",
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    scc_of: dict[str, int] = {}
    for idx, scc in enumerate(ddg.sccs(restrict_to_unsatisfied=False)):
        for stmt in scc:
            scc_of[stmt.name] = idx
    for stmt in ddg.program.statements:
        color = _SCC_COLORS[scc_of.get(stmt.name, 0) % len(_SCC_COLORS)]
        label = f"{stmt.name}\\n{', '.join(stmt.space.dims)}"
        lines.append(f'  "{stmt.name}" [label="{label}", fillcolor={color}];')
    for dep in ddg.deps:
        style, color = _KIND_STYLE.get(dep.kind, ("solid", "gray"))
        label = dep.kind.upper()
        if include_distances:
            vec = dep.distance_vector()
            label += f" {vec}" if vec is not None else " (*)"
        lines.append(
            f'  "{dep.source.name}" -> "{dep.target.name}" '
            f'[label="{label}", style={style}, color={color}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
