"""End-to-end source-to-source optimization pipeline.

Mirrors the paper's toolchain stages and timing breakdown (Table 3, Fig. 5):

1. **dependence analysis**      — :mod:`repro.deps` (ISL's role);
2. **automatic transformation** — index-set splitting (``--iss``), diamond
   tiling search (``--partlbtile``), and the Pluto/Pluto+ ILP scheduler;
3. **code generation**          — :mod:`repro.codegen` (CLooG's role);
4. **misc/other**               — hyperplane properties, tilable-band
   handling, tiling (post-transformation analyses, as in the paper).

``optimize()`` returns the transformed program, schedules, generated code,
and a per-stage :class:`TimingBreakdown`.
"""

from __future__ import annotations

import dataclasses
import json
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.codegen import generate_python
from repro.core.diamond import find_diamond_schedule
from repro.core.iss import index_set_split
from repro.core.properties import mark_parallelism
from repro.core.scheduler import PlutoScheduler, SchedulerOptions, SchedulerStats
from repro.core.tiling import (
    TiledSchedule,
    l2_tile_schedule,
    optimize_intra_tile,
    tile_schedule,
    untiled_schedule,
)
from repro.core.transform import Schedule
from repro.deps import DependenceGraph, DepStats, compute_dependences
from repro.exec.options import BACKENDS, ExecStats, ExecutionOptions
from repro.frontend.ir import Program
from repro.polyhedra.cache import cache_disabled

__all__ = [
    "PipelineOptions",
    "TimingBreakdown",
    "OptimizationResult",
    "PIPELINE_VERSION",
    "RESULT_FORMAT_VERSION",
    "optimize",
    "pipeline_fingerprint",
]

#: bumped whenever OptimizationResult.to_json()'s shape changes incompatibly
RESULT_FORMAT_VERSION = 1

#: bumped whenever ``optimize()`` may emit a *different* schedule or code for
#: the same ``(program, options)`` input — new scheduler heuristics, changed
#: tiling defaults, codegen changes.  The serving layer's content-addressed
#: schedule cache folds this into every key, so stale entries from an older
#: pipeline can never be served (see ``docs/API.md``, "Cache-key contract").
PIPELINE_VERSION = 1

#: bumped whenever the quick-permutation heuristic (``repro.core.quick``)
#: may emit a different schedule for the same input — candidate ordering,
#: matching rules, the auto quality bound.  Folded into the cache
#: fingerprint only for ``scheduler="quick"|"auto"`` requests, so tuning
#: the heuristic never invalidates cached exact results.
QUICK_SCHEDULER_VERSION = 1


def pipeline_fingerprint(scheduler: Optional[str] = None) -> str:
    """The version stamp the schedule cache mixes into every key.

    When ``scheduler`` (the resolved scheduler mode) is given, the stamp
    carries it — plus the quick-heuristic version for the modes that may
    run it — so ``quick``/``auto``/``exact`` results can never collide in
    a content-addressed store even if the rest of the request is identical.
    """
    from repro.frontend.serialize import IR_FORMAT_VERSION

    base = (
        f"pipeline-v{PIPELINE_VERSION}"
        f"/result-v{RESULT_FORMAT_VERSION}"
        f"/ir-v{IR_FORMAT_VERSION}"
    )
    if scheduler is None:
        return base
    tail = f"/sched-{scheduler}"
    if scheduler in ("quick", "auto"):
        tail += f"-v{QUICK_SCHEDULER_VERSION}"
    return base + tail


@dataclass(kw_only=True)
class PipelineOptions:
    """Pipeline configuration (the paper's command-line flags).

    ``--tile --parallel`` are the paper's defaults for all benchmarks;
    ``--iss`` and ``--partlbtile`` (diamond) are enabled for the periodic
    stencil suite.

    All fields are keyword-only: positional construction would silently
    re-bind meaning whenever a field is added, and options cross process
    boundaries (suite manifests) where that ambiguity is fatal.
    """

    algorithm: str = "plutoplus"      # "pluto" | "plutoplus"
    #: hyperplane search strategy: "exact" is the per-level Farkas/lexmin
    #: ILP (the paper's algorithm); "quick" is the permutation heuristic
    #: (fusion + dimension matching, arXiv:1803.10726) with exact legality
    #: validation; "auto" tries quick first and falls back to exact when
    #: the heuristic fails or its tilability bound is worse
    scheduler: str = "exact"          # "auto" | "exact" | "quick"
    tile: bool = True
    tile_size: int = 32
    iss: bool = False                 # --iss
    diamond: bool = False             # --partlbtile
    coeff_bound: int = 4              # Pluto+ b
    ilp_backend: str = "highs"
    min_band_width: int = 2
    fuse: str = "smart"               # --fuse: smart | max | no
    l2tile: bool = False              # --l2tile: second level of tiling
    l2_ratio: int = 8
    intra_tile: bool = False          # post-pass: rotate parallel loop inward
    deps_cache: bool = True           # --no-deps-cache disables the fast path
    #: execution backend for ``OptimizationResult.run()``: "python" (the
    #: exec'd numpy kernel, the historical behavior), "c" (compile the
    #: emitted C natively), or "auto" (fastest available).  Purely an
    #: execution-time knob — the schedule and generated sources are
    #: identical across backends.
    backend: str = "python"
    #: read-after-read reuse as a locality signal (``repro.deps.rar``):
    #: RAR relations join the exact scheduler's bounding objective — and
    #: only the objective, never legality — steering between equally-legal
    #: schedules.  Quick/diamond searches ignore it (they have no distance
    #: objective to feed).
    rar: bool = False
    #: reduction handling (``repro.core.reductions``): "off" keeps the
    #: exact dependence model; "privatize" and "omp" both relax
    #: commutative-associative self-dependences so the reduction dimension
    #: can be marked parallel, and differ at emission — "privatize" keeps
    #: native loops sequential (Python partial sums only), "omp" also
    #: emits ``#pragma omp .. reduction(..)``/atomic C.  Either value
    #: trades bitwise reproducibility for parallelism: verification drops
    #: to tolerance comparison (FP reassociation).
    parallel_reductions: str = "off"  # "off" | "privatize" | "omp"

    def __post_init__(self) -> None:
        """Validate up front — bad values otherwise surface as cryptic
        failures deep in codegen (``tile_size=0`` used to die with an
        "unbounded scan dimension" RuntimeError)."""
        if self.algorithm not in ("pluto", "plutoplus"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.scheduler not in ("auto", "exact", "quick"):
            raise ValueError(
                f"unknown scheduler {self.scheduler!r} "
                f"(expected 'auto', 'exact', or 'quick')"
            )
        if self.ilp_backend not in ("exact", "highs", "auto"):
            raise ValueError(f"unknown ilp_backend {self.ilp_backend!r}")
        if self.fuse not in ("smart", "max", "no"):
            raise ValueError(f"unknown fusion policy {self.fuse!r}")
        if self.coeff_bound < 1:
            raise ValueError("coeff_bound must be >= 1")
        if self.tile_size < 1:
            raise ValueError(
                "tile_size must be >= 1 (set tile=False to disable tiling)"
            )
        if self.l2_ratio < 1:
            raise ValueError("l2_ratio must be >= 1")
        if self.min_band_width < 1:
            raise ValueError("min_band_width must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {', '.join(map(repr, BACKENDS))})"
            )
        if not isinstance(self.rar, bool):
            raise ValueError(f"rar must be a bool, got {self.rar!r}")
        if self.parallel_reductions not in ("off", "privatize", "omp"):
            raise ValueError(
                f"unknown parallel_reductions {self.parallel_reductions!r} "
                f"(expected 'off', 'privatize', or 'omp')"
            )

    def scheduler_options(self) -> SchedulerOptions:
        return SchedulerOptions(
            algorithm=self.algorithm,
            coeff_bound=self.coeff_bound,
            ilp_backend=self.ilp_backend,
            fuse=self.fuse,
        )

    def as_dict(self) -> dict:
        """Dict form for manifests and cache keys.

        ``backend`` is omitted at its default ("python") so every cache key
        and manifest written before the knob existed stays bit-identical;
        a non-default backend *is* folded in, giving backend-specific
        server cache entries their own keys.  ``rar`` and
        ``parallel_reductions`` follow the same rule: absent at their
        defaults, folded in when enabled.
        """
        d = dataclasses.asdict(self)
        if d.get("backend") == "python":
            del d["backend"]
        if d.get("rar") is False:
            del d["rar"]
        if d.get("parallel_reductions") == "off":
            del d["parallel_reductions"]
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineOptions":
        """Inverse of :meth:`as_dict`; unknown keys are rejected loudly."""
        known = set(cls.__dataclass_fields__)
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown PipelineOptions fields: {sorted(extra)}")
        return cls(**data)


@dataclass
class TimingBreakdown:
    """Seconds per pipeline stage (the Fig. 5 components).

    ``ilp_solve`` is the wall time spent inside ILP solves — a subset of
    ``auto_transformation``, broken out for the solver instrumentation
    (``--stats``); it is not added into ``total``.
    """

    dependence_analysis: float = 0.0
    auto_transformation: float = 0.0
    code_generation: float = 0.0
    misc: float = 0.0
    ilp_solve: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.dependence_analysis
            + self.auto_transformation
            + self.code_generation
            + self.misc
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "dependence_analysis": self.dependence_analysis,
            "auto_transformation": self.auto_transformation,
            "code_generation": self.code_generation,
            "misc": self.misc,
            "ilp_solve": self.ilp_solve,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingBreakdown":
        return cls(
            dependence_analysis=data["dependence_analysis"],
            auto_transformation=data["auto_transformation"],
            code_generation=data["code_generation"],
            misc=data["misc"],
            ilp_solve=data["ilp_solve"],
        )


@dataclass
class OptimizationResult:
    program: Program                  # post-ISS program actually scheduled
    source_program: Program           # what the user passed in
    schedule: Schedule
    tiled: TiledSchedule
    code: object                      # GeneratedCode
    timing: TimingBreakdown
    scheduler_stats: Optional[SchedulerStats] = None
    dep_stats: Optional[DepStats] = None
    used_iss: bool = False
    used_diamond: bool = False
    options: Optional[PipelineOptions] = None

    def summary(self) -> str:
        lines = [
            f"{self.source_program.name} [{self.options.algorithm if self.options else '?'}]",
            f"  ISS: {self.used_iss}, diamond: {self.used_diamond}",
            f"  schedule depth {self.schedule.depth}, "
            f"bands {[str(b) for b in self.schedule.bands]}",
            f"  timing: {self.timing.as_dict()}",
        ]
        return "\n".join(lines)

    # -- execution --------------------------------------------------------

    def run(
        self,
        arrays: dict,
        params: dict,
        exec_options: Optional[ExecutionOptions] = None,
        stats: Optional[ExecStats] = None,
    ) -> ExecStats:
        """Execute the optimized kernel in place over ``arrays``.

        The backend-neutral entry point: dispatches on
        ``exec_options.backend`` (defaulting to the pipeline's
        ``options.backend``, i.e. ``--backend``).  Native kernels are
        compiled lazily on first call and memoized on the result; a missing
        compiler degrades to the Python kernel with the reason in the
        returned :class:`ExecStats.fallback_reason` (unless
        ``exec_options.strict``).
        """
        if exec_options is None:
            backend = self.options.backend if self.options is not None else "python"
            exec_options = ExecutionOptions(backend=backend)
        if stats is None:
            stats = ExecStats()
        stats.backend_requested = exec_options.backend
        if exec_options.backend == "python":
            stats.backend = "python"
            t0 = time.perf_counter()
            self.code.run(arrays, params)
            stats.exec_seconds += time.perf_counter() - t0
            return stats
        kernel, cstats, fresh = self._compiled(exec_options)
        stats.backend = kernel.backend
        stats.fallback_reason = cstats.fallback_reason
        stats.artifact_key = cstats.artifact_key
        stats.compiler = cstats.compiler
        if fresh:
            stats.compile_seconds = cstats.compile_seconds
            stats.artifact_cache = cstats.artifact_cache
        elif stats.backend == "c":
            # the kernel object is already built and loaded in this process
            stats.artifact_cache = "memory"
        if kernel.backend == "c":
            kernel.run(
                arrays, params, threads=exec_options.threads, stats=stats
            )
        else:
            t0 = time.perf_counter()
            kernel.run(arrays, params)
            stats.exec_seconds += time.perf_counter() - t0
        return stats

    def _compiled(self, exec_options: ExecutionOptions):
        """The memoized ``(kernel, compile-time stats)`` for these options.

        The memo lives outside the dataclass fields and is dropped by
        :meth:`__getstate__`: after a pickle round-trip the first ``run()``
        recompiles through the content-addressed artifact cache (a disk
        hit, not a rebuild, when the cache survived)."""
        from repro.exec import compile_kernel

        memo = self.__dict__.setdefault("_kernels", {})
        key = (
            exec_options.backend,
            exec_options.cc,
            exec_options.cache_dir,
            exec_options.strict,
        )
        hit = memo.get(key)
        if hit is not None:
            kernel, cstats = hit
            return kernel, cstats, False
        cstats = ExecStats(backend_requested=exec_options.backend)
        kernel = compile_kernel(
            self.tiled, exec_options, cstats, code=self.code
        )
        memo[key] = (kernel, cstats)
        return kernel, cstats, True

    def __getstate__(self) -> dict:
        """Compiled native kernels are caches, not state (the
        ``GeneratedCode._func`` rule, one level up)."""
        state = self.__dict__.copy()
        state.pop("_kernels", None)
        return state

    # -- serialization ----------------------------------------------------

    def to_json(self) -> str:
        """Serialize the full result as a JSON string.

        Everything is structural — programs, schedules, generated source,
        timings, solver/dependence counters — so results written by a suite
        worker land in manifests unchanged and :meth:`from_json` rebuilds an
        object equal to the original.  The compiled kernel handle is a cache
        and is rebuilt lazily on first use after deserialization.
        """
        from repro.frontend.serialize import program_to_dict

        payload = {
            "version": RESULT_FORMAT_VERSION,
            "program": program_to_dict(self.program),
            "source_program": program_to_dict(self.source_program),
            "schedule": self.schedule.to_dict(),
            "tiled": self.tiled.to_dict(),
            "code": {
                "python_source": self.code.python_source,
                "traced": self.code.traced,
            },
            "timing": self.timing.as_dict(),
            "scheduler_stats": (
                None if self.scheduler_stats is None
                else self.scheduler_stats.as_dict()
            ),
            "dep_stats": (
                None if self.dep_stats is None else self.dep_stats.as_dict()
            ),
            "used_iss": self.used_iss,
            "used_diamond": self.used_diamond,
            "options": None if self.options is None else self.options.as_dict(),
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "OptimizationResult":
        """Inverse of :meth:`to_json`."""
        from repro.codegen import make_generated_code
        from repro.core.scheduler import SchedulerStats
        from repro.deps import DepStats
        from repro.frontend.serialize import program_from_dict

        data = json.loads(text)
        version = data.get("version")
        if version != RESULT_FORMAT_VERSION:
            raise ValueError(
                f"result serialized with format v{version}, "
                f"this build reads v{RESULT_FORMAT_VERSION}"
            )
        program = program_from_dict(data["program"])
        source_program = program_from_dict(data["source_program"])
        tiled = TiledSchedule.from_dict(program, data["tiled"])
        code = make_generated_code(
            data["code"]["python_source"], tiled, traced=data["code"]["traced"]
        )
        return cls(
            program=program,
            source_program=source_program,
            schedule=Schedule.from_dict(program, data["schedule"]),
            tiled=tiled,
            code=code,
            timing=TimingBreakdown.from_dict(data["timing"]),
            scheduler_stats=(
                None if data["scheduler_stats"] is None
                else SchedulerStats.from_dict(data["scheduler_stats"])
            ),
            dep_stats=(
                None if data["dep_stats"] is None
                else DepStats.from_dict(data["dep_stats"])
            ),
            used_iss=data["used_iss"],
            used_diamond=data["used_diamond"],
            options=(
                None if data["options"] is None
                else PipelineOptions.from_dict(data["options"])
            ),
        )


def optimize(
    program: Union[Program, str], options: Optional[PipelineOptions] = None
) -> OptimizationResult:
    """Run the full polyhedral source-to-source pipeline on ``program``.

    ``program`` may be a :class:`Program` or a registered workload name
    (resolved through :func:`repro.workloads.get_workload`); anything else
    is a :class:`TypeError`.
    """
    options = options or PipelineOptions()
    if isinstance(program, str):
        # Late import: repro.workloads imports PipelineOptions from here.
        from repro.workloads import get_workload

        program = get_workload(program).program()
    if not isinstance(program, Program):
        raise TypeError(
            f"optimize() expects a Program or a workload name, got "
            f"{type(program).__name__}; see repro.workloads.get_workload"
        )
    guard = nullcontext() if options.deps_cache else cache_disabled()
    with guard:
        return _optimize(program, options)


def _optimize(program: Program, options: PipelineOptions) -> OptimizationResult:
    timing = TimingBreakdown()
    dep_stats = DepStats()

    deps = compute_dependences(program, dep_stats)
    timing.dependence_analysis = dep_stats.analysis_seconds

    used_iss = False
    work = program
    if options.iss:
        t0 = time.perf_counter()
        work, used_iss = index_set_split(program, deps)
        timing.auto_transformation += time.perf_counter() - t0
        if used_iss:
            deps = compute_dependences(work, dep_stats)
            timing.dependence_analysis = dep_stats.analysis_seconds

    # Reduction relaxation: detected accumulation statements give up their
    # self-dependences *before* the DDG is built, so every scheduling path
    # (exact, quick, diamond) sees the relaxed legality set and the
    # parallelism pass can prove the reduction dimension parallel.  The
    # relaxed dependences are re-checked after scheduling to tag the rows
    # whose parallelism rests on the relaxation (the emitters discharge it).
    reductions: list = []
    relaxed: list = []
    if options.parallel_reductions != "off":
        from repro.core.reductions import detect_reductions, relax_reduction_deps

        reductions = detect_reductions(work)
        deps, relaxed = relax_reduction_deps(deps, reductions)

    # RAR reuse relations: computed on the scheduled (post-ISS) program,
    # handed to the exact scheduler as objective-only rows — never to the
    # DDG, so legality, SCC cuts, and parallelism marking are untouched.
    rar_deps: list = []
    if options.rar:
        from repro.deps.rar import compute_rar_dependences

        rar_deps = compute_rar_dependences(work, dep_stats)
        timing.dependence_analysis = dep_stats.analysis_seconds

    ddg = DependenceGraph(work, deps, stats=dep_stats)
    sched_opts = options.scheduler_options()

    schedule: Optional[Schedule] = None
    used_diamond = False
    stats = SchedulerStats()
    stats.scheduler_mode = options.scheduler
    stats.reductions_detected = len(reductions)
    stats.reductions_relaxed = len(relaxed)

    # Cross-request structural warm-start (repro.core.skeleton): when a
    # skeleton store is configured, load any record for this request's
    # structural fingerprint and hand the scheduler a replay context.  The
    # context only answers per-level solves whose exact solve key matches
    # a recorded one — replay is bit-identical to a cold solve by
    # construction — so a rescaled or edited request silently degrades to
    # cold solving, never to a different schedule.
    from repro.core.skeleton import WarmStart, skeleton_store_from_env

    store = skeleton_store_from_env()
    fingerprint = prior = warm = None
    if store is not None:
        from repro.core.skeleton import structural_fingerprint
        from repro.frontend.serialize import program_to_dict

        fingerprint = structural_fingerprint(
            program_to_dict(program), options.as_dict()
        )
        prior = store.get(fingerprint)
        warm = WarmStart(prior.get("solves") if prior else None)

    t0 = time.perf_counter()
    if options.scheduler in ("quick", "auto"):
        from repro.core.quick import attempt_quick_schedule

        schedule = attempt_quick_schedule(
            work, ddg, sched_opts,
            mode=options.scheduler, diamond=options.diamond, stats=stats,
        )
    if schedule is not None:
        stats.scheduler_path = "quick"
    else:
        # The exact Pluto+ path — either requested outright or the quick
        # heuristic's fallback (stats.fallback_reason says why).  Both
        # schedulers reset the DDG, so a failed quick attempt leaves no
        # residue and the fallback is bit-compatible with scheduler="exact".
        stats.scheduler_path = (
            "exact" if options.scheduler == "exact" else "fallback"
        )
        if options.diamond:
            schedule = find_diamond_schedule(
                work, ddg, sched_opts, stats=stats, warm=warm
            )
            used_diamond = schedule is not None
        if schedule is None:
            scheduler = PlutoScheduler(
                work, ddg, sched_opts, warm=warm, rar=rar_deps
            )
            scheduler.stats = stats  # accumulate alongside any diamond attempt
            schedule = scheduler.schedule()
    from repro.core.quick import fusion_groups_of

    stats.fusion_groups = fusion_groups_of(schedule)
    timing.auto_transformation += time.perf_counter() - t0
    timing.ilp_solve = stats.solve.solve_seconds

    if store is not None:
        stats.structural_warm_start = warm.hits
        stats.structural_path = (
            "miss" if prior is None
            else ("hit" if warm.misses == 0 else "fallback")
        )
        if warm.dirty or prior is None:
            store.merge(
                fingerprint,
                warm.solves,
                farkas=warm.farkas,
                meta={
                    "program": program.name,
                    "scheduler_path": stats.scheduler_path,
                    "fallback_reason": stats.fallback_reason,
                    "used_diamond": used_diamond,
                    "depth": schedule.depth,
                    "bands": [str(b) for b in schedule.bands],
                },
            )

    t0 = time.perf_counter()
    red_carried = mark_parallelism(schedule, ddg, relaxed=relaxed)
    if relaxed:
        from repro.core.reductions import tag_reduction_rows

        tag_reduction_rows(
            schedule, red_carried, reductions, options.parallel_reductions
        )
    if options.tile:
        tiled = tile_schedule(
            schedule,
            tile_size=options.tile_size,
            min_band_width=options.min_band_width,
        )
    else:
        tiled = untiled_schedule(schedule)
    if options.l2tile:
        tiled = l2_tile_schedule(tiled, ratio=options.l2_ratio)
    if options.intra_tile:
        tiled = optimize_intra_tile(tiled)
    timing.misc = time.perf_counter() - t0

    t0 = time.perf_counter()
    code = generate_python(tiled)
    # Force scan-system construction and source emission (the expensive part
    # of code generation) inside the timed region; compilation is lazy.
    _ = code.python_source
    timing.code_generation = time.perf_counter() - t0

    return OptimizationResult(
        program=work,
        source_program=program,
        schedule=schedule,
        tiled=tiled,
        code=code,
        timing=timing,
        scheduler_stats=stats,
        dep_stats=dep_stats,
        used_iss=used_iss,
        used_diamond=used_diamond,
        options=options,
    )
