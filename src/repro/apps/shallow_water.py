"""Shallow-water equations on a periodic grid (the swim benchmark [33, 35]).

Sadourny's potential-enstrophy-conserving finite-difference scheme: each time
step computes mass fluxes CU/CV, potential vorticity Z, and height H from
(U, V, P), then leapfrogs to (UNEW, VNEW, PNEW), then applies Robert-Asselin
time smoothing — the calc1/calc2/calc3 structure of 171.swim, which
:mod:`repro.workloads.swim` presents to the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShallowWater"]


def _xp(a: np.ndarray) -> np.ndarray:
    return np.roll(a, -1, axis=0)     # i + 1 (periodic)


def _xm(a: np.ndarray) -> np.ndarray:
    return np.roll(a, 1, axis=0)      # i - 1


def _yp(a: np.ndarray) -> np.ndarray:
    return np.roll(a, -1, axis=1)     # j + 1


def _ym(a: np.ndarray) -> np.ndarray:
    return np.roll(a, 1, axis=1)      # j - 1


@dataclass
class ShallowWater:
    n: int
    dx: float = 1e5
    dy: float = 1e5
    dt: float = 90.0
    alpha: float = 0.001
    u: np.ndarray = field(init=False, repr=False)
    v: np.ndarray = field(init=False, repr=False)
    p: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # swim's initial condition: a doubly periodic velocity potential
        n = self.n
        a = 1e6
        el = n * self.dx
        pcf = (np.pi**2) * (a**2) / (el**2)
        x = np.arange(n) * self.dx
        y = np.arange(n) * self.dy
        psi = (
            a
            * np.sin((x[:, None] + 0.5 * self.dx) * np.pi / el)
            * np.sin((y[None, :] + 0.5 * self.dy) * np.pi / el)
        )
        self.u = -(np.roll(psi, -1, axis=1) - psi) / self.dy
        self.v = (np.roll(psi, -1, axis=0) - psi) / self.dx
        self.p = pcf * (
            np.cos(2.0 * x[:, None] * np.pi / el)
            + np.cos(2.0 * y[None, :] * np.pi / el)
        ) + 50000.0
        self._uold = self.u.copy()
        self._vold = self.v.copy()
        self._pold = self.p.copy()

    # -- the three sweeps --------------------------------------------------

    def calc1(self):
        """Fluxes, potential vorticity, height (swim's calc1, transcribed
        with CU/CV/Z stored at their staggered-shifted indices)."""
        u, v, p = self.u, self.v, self.p
        fsdx = 4.0 / self.dx
        fsdy = 4.0 / self.dy
        cu = 0.5 * (p + _xm(p)) * u
        cv = 0.5 * (p + _ym(p)) * v
        z = (fsdx * (v - _xm(v)) - fsdy * (u - _ym(u))) / (
            p + _xm(p) + _ym(p) + _xm(_ym(p))
        )
        h = p + 0.25 * (_xp(u) * _xp(u) + u * u + _yp(v) * _yp(v) + v * v)
        return cu, cv, z, h

    def calc2(self, cu, cv, z, h, tdt):
        """Leapfrog update (swim's calc2, with the 4-point flux averages of
        the potential-enstrophy-conserving scheme [33])."""
        tdts8 = tdt / 8.0
        tdtsdx = tdt / self.dx
        tdtsdy = tdt / self.dy
        unew = (
            self._uold
            + tdts8 * (_yp(z) + z) * (_yp(cv) + _xm(_yp(cv)) + _xm(cv) + cv)
            - tdtsdx * (h - _xm(h))
        )
        vnew = (
            self._vold
            - tdts8 * (_xp(z) + z) * (_xp(cu) + cu + _ym(cu) + _xp(_ym(cu)))
            - tdtsdy * (h - _ym(h))
        )
        pnew = (
            self._pold
            - tdtsdx * (_xp(cu) - cu)
            - tdtsdy * (_yp(cv) - cv)
        )
        return unew, vnew, pnew

    def calc3(self, unew, vnew, pnew):
        a = self.alpha
        self._uold = self.u + a * (unew - 2.0 * self.u + self._uold)
        self._vold = self.v + a * (vnew - 2.0 * self.v + self._vold)
        self._pold = self.p + a * (pnew - 2.0 * self.p + self._pold)
        self.u, self.v, self.p = unew, vnew, pnew

    def step(self, first: bool = False) -> None:
        tdt = self.dt if first else 2.0 * self.dt
        cu, cv, z, h = self.calc1()
        unew, vnew, pnew = self.calc2(cu, cv, z, h, tdt)
        self.calc3(unew, vnew, pnew)

    def run(self, steps: int) -> None:
        for it in range(steps):
            self.step(first=(it == 0))

    def diagnostics(self) -> dict[str, float]:
        return {
            "mass": float(self.p.mean()),
            "ke": float(0.5 * np.mean(self.u**2 + self.v**2)),
            "umax": float(np.abs(self.u).max()),
        }
