"""A D3Q27 Lattice Boltzmann solver (BGK), fully periodic or cavity flow.

The 27-velocity set covers every lattice direction in ``{-1,0,1}^3`` — the
dependence pattern modeled (cone-reduced) by ``lbm-ldc-d3q27`` in
:mod:`repro.workloads.lbm`.  Arrays have shape ``(27, NZ, NY, NX)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["D3Q27", "LidDrivenCavity3D"]


def _velocity_set() -> tuple[np.ndarray, np.ndarray]:
    vels = np.array(
        [(cx, cy, cz) for cz in (0, 1, -1) for cy in (0, 1, -1) for cx in (0, 1, -1)]
    )
    weights = np.empty(27)
    for q, (cx, cy, cz) in enumerate(vels):
        n = abs(cx) + abs(cy) + abs(cz)
        weights[q] = {0: 8 / 27, 1: 2 / 27, 2: 1 / 54, 3: 1 / 216}[n]
    return vels, weights


def _opposites(c: np.ndarray) -> np.ndarray:
    return np.array(
        [int(np.flatnonzero((c == -c[q]).all(axis=1))[0]) for q in range(len(c))]
    )


class D3Q27:
    C, W = _velocity_set()
    Q = 27
    OPPOSITE = _opposites(C)

    @classmethod
    def equilibrium(cls, rho, ux, uy, uz):
        cu = (
            cls.C[:, 0, None, None, None] * ux[None]
            + cls.C[:, 1, None, None, None] * uy[None]
            + cls.C[:, 2, None, None, None] * uz[None]
        )
        usq = ux * ux + uy * uy + uz * uz
        return (
            cls.W[:, None, None, None]
            * rho[None]
            * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq[None])
        )


@dataclass
class LidDrivenCavity3D:
    n: int
    tau: float = 0.6
    u_lid: float = 0.05
    f: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        shape = (self.n, self.n, self.n)
        rho = np.ones(shape)
        zero = np.zeros(shape)
        self.f = D3Q27.equilibrium(rho, zero, zero, zero)

    def macroscopic(self):
        rho = self.f.sum(axis=0)
        ux = (D3Q27.C[:, 0, None, None, None] * self.f).sum(axis=0) / rho
        uy = (D3Q27.C[:, 1, None, None, None] * self.f).sum(axis=0) / rho
        uz = (D3Q27.C[:, 2, None, None, None] * self.f).sum(axis=0) / rho
        return rho, ux, uy, uz

    def collide(self) -> None:
        rho, ux, uy, uz = self.macroscopic()
        feq = D3Q27.equilibrium(rho, ux, uy, uz)
        self.f += (feq - self.f) / self.tau

    def stream(self) -> None:
        for q in range(D3Q27.Q):
            cx, cy, cz = D3Q27.C[q]
            self.f[q] = np.roll(self.f[q], (int(cz), int(cy), int(cx)), axis=(0, 1, 2))

    def boundaries(self) -> None:
        f = self.f
        # no-slip on five faces (z=0 bottom, y walls, x walls)
        for q in range(D3Q27.Q):
            opp = D3Q27.OPPOSITE[q]
            f[opp, 0, :, :] = f[q, 0, :, :]
            f[opp, :, 0, :] = f[q, :, 0, :]
            f[opp, :, -1, :] = f[q, :, -1, :]
            f[opp, :, :, 0] = f[q, :, :, 0]
            f[opp, :, :, -1] = f[q, :, :, -1]
        # moving lid at z = n-1, along +x
        rho_wall = f[:, -1, :, :].sum(axis=0)
        for q in range(D3Q27.Q):
            opp = D3Q27.OPPOSITE[q]
            corr = 6.0 * D3Q27.W[q] * rho_wall * D3Q27.C[q, 0] * self.u_lid
            f[opp, -1, :, :] = f[q, -1, :, :] - corr

    def step(self) -> None:
        self.collide()
        self.stream()
        self.boundaries()

    def run(self, steps: int) -> np.ndarray:
        for _ in range(steps):
            self.step()
        return self.f
