"""A complete D2Q9 Lattice Boltzmann solver (BGK and MRT collisions).

Implements the three flow configurations the paper benchmarks:

* **lid-driven cavity** (``lbm-ldc-d2q9`` / ``-mrt``) — no-slip walls via
  half-way bounce-back, a moving top lid via the Ladd momentum correction;
* **Poiseuille flow** (``lbm-poi-d2q9``) — channel flow driven by a constant
  body force (Guo forcing), periodic in the stream direction [43];
* **flow past a cylinder** (``lbm-fpc-d2q9``) — a circular obstacle with
  full bounce-back inside a channel.

Everything is vectorized numpy over arrays of shape ``(9, NY, NX)``; the
streaming step is a periodic ``np.roll`` per direction, exactly the
dependence pattern the polyhedral model in :mod:`repro.workloads.lbm`
presents to the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["D2Q9", "LidDrivenCavity", "Poiseuille", "FlowPastCylinder"]


class D2Q9:
    """Lattice constants for the D2Q9 model."""

    # velocity set: rest, +x, +y, -x, -y, +x+y, -x+y, -x-y, +x-y
    CX = np.array([0, 1, 0, -1, 0, 1, -1, -1, 1])
    CY = np.array([0, 0, 1, 0, -1, 1, 1, -1, -1])
    W = np.array(
        [4 / 9] + [1 / 9] * 4 + [1 / 36] * 4
    )
    OPPOSITE = np.array([0, 3, 4, 1, 2, 7, 8, 5, 6])
    Q = 9

    @classmethod
    def equilibrium(cls, rho: np.ndarray, ux: np.ndarray, uy: np.ndarray) -> np.ndarray:
        """Second-order Maxwell-Boltzmann equilibrium, shape (9, NY, NX)."""
        cu = (
            cls.CX[:, None, None] * ux[None] + cls.CY[:, None, None] * uy[None]
        )
        usq = ux * ux + uy * uy
        return (
            cls.W[:, None, None]
            * rho[None]
            * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq[None])
        )


@dataclass
class _LBMBase:
    nx: int
    ny: int
    tau: float = 0.6
    f: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rho = np.ones((self.ny, self.nx))
        zero = np.zeros((self.ny, self.nx))
        self.f = D2Q9.equilibrium(rho, zero, zero)

    # -- core steps -------------------------------------------------------

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rho = self.f.sum(axis=0)
        ux = (D2Q9.CX[:, None, None] * self.f).sum(axis=0) / rho
        uy = (D2Q9.CY[:, None, None] * self.f).sum(axis=0) / rho
        return rho, ux, uy

    def collide_bgk(self) -> None:
        rho, ux, uy = self.macroscopic()
        feq = D2Q9.equilibrium(rho, ux, uy)
        self.f += (feq - self.f) / self.tau

    def collide_mrt(self) -> None:
        """Multiple-relaxation-time collision [11].

        Moments are relaxed at individual rates; implemented via the standard
        Gram-Schmidt moment basis.  Roughly doubles the arithmetic per site —
        the higher operational intensity the paper notes for the mrt variant.
        """
        m = _MRT_M @ self.f.reshape(D2Q9.Q, -1)
        rho = m[0]
        jx, jy = m[3], m[5]
        meq = np.zeros_like(m)
        jsq = jx * jx + jy * jy
        safe_rho = np.where(np.abs(rho) > 1e-12, rho, 1.0)
        meq[0] = rho
        meq[1] = -2.0 * rho + 3.0 * jsq / safe_rho
        meq[2] = rho - 3.0 * jsq / safe_rho
        meq[3] = jx
        meq[4] = -jx
        meq[5] = jy
        meq[6] = -jy
        meq[7] = (jx * jx - jy * jy) / safe_rho
        meq[8] = jx * jy / safe_rho
        s = _MRT_S.copy()
        s[7] = s[8] = 1.0 / self.tau
        m -= s[:, None] * (m - meq)
        self.f = (_MRT_M_INV @ m).reshape(self.f.shape)

    def stream(self) -> None:
        for q in range(D2Q9.Q):
            self.f[q] = np.roll(
                np.roll(self.f[q], D2Q9.CY[q], axis=0), D2Q9.CX[q], axis=1
            )

    def boundaries(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def step(self, collision: str = "bgk") -> None:
        if collision == "bgk":
            self.collide_bgk()
        elif collision == "mrt":
            self.collide_mrt()
        else:
            raise ValueError(f"unknown collision {collision!r}")
        self.stream()
        self.boundaries()

    def run(self, steps: int, collision: str = "bgk") -> np.ndarray:
        for _ in range(steps):
            self.step(collision)
        return self.f

    def velocity_field(self) -> tuple[np.ndarray, np.ndarray]:
        _, ux, uy = self.macroscopic()
        return ux, uy


def _bounce_back_rows(f: np.ndarray, row: int) -> None:
    """Half-way bounce-back on a solid horizontal wall occupying ``row``."""
    for q in range(D2Q9.Q):
        opp = D2Q9.OPPOSITE[q]
        f[opp, row, :] = f[q, row, :]


@dataclass
class LidDrivenCavity(_LBMBase):
    """No-slip box with the top lid moving at ``u_lid``."""

    u_lid: float = 0.1

    def boundaries(self) -> None:
        f = self.f
        _bounce_back_rows(f, 0)          # bottom wall
        # side walls
        for q in range(D2Q9.Q):
            opp = D2Q9.OPPOSITE[q]
            f[opp, :, 0] = f[q, :, 0]
            f[opp, :, -1] = f[q, :, -1]
        # moving lid: bounce-back with momentum injection (Ladd)
        row = self.ny - 1
        rho_wall = f[:, row, :].sum(axis=0)
        for q in range(D2Q9.Q):
            opp = D2Q9.OPPOSITE[q]
            corr = 6.0 * D2Q9.W[q] * rho_wall * D2Q9.CX[q] * self.u_lid
            f[opp, row, :] = f[q, row, :] - corr


@dataclass
class Poiseuille(_LBMBase):
    """Body-force-driven channel flow, periodic along x [43]."""

    force: float = 1e-5

    def boundaries(self) -> None:
        f = self.f
        _bounce_back_rows(f, 0)
        _bounce_back_rows(f, self.ny - 1)

    def collide_bgk(self) -> None:
        super().collide_bgk()
        # Guo-style constant body force along +x.
        fx = self.force
        self.f += (
            D2Q9.W[:, None, None]
            * 3.0
            * D2Q9.CX[:, None, None]
            * fx
        )

    def analytic_profile(self) -> np.ndarray:
        """Steady-state parabolic ux(y) for validation.

        In-place bounce-back mirrors the wall rows themselves, so the no-slip
        planes sit exactly on rows ``0`` and ``ny-1``.
        """
        nu = (self.tau - 0.5) / 3.0
        y = np.arange(self.ny, dtype=float)
        h = self.ny - 1.0
        return self.force / (2.0 * nu) * y * (h - y)


@dataclass
class FlowPastCylinder(_LBMBase):
    """Channel flow with a circular full-bounce-back obstacle."""

    u_in: float = 0.08
    radius: Optional[int] = None
    mask: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        r = self.radius or max(self.ny // 8, 2)
        cy, cx = self.ny // 2, self.nx // 4
        yy, xx = np.mgrid[0 : self.ny, 0 : self.nx]
        self.mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
        rho = np.ones((self.ny, self.nx))
        ux = np.full((self.ny, self.nx), self.u_in)
        self.f = D2Q9.equilibrium(rho, ux, np.zeros_like(ux))

    def boundaries(self) -> None:
        f = self.f
        _bounce_back_rows(f, 0)
        _bounce_back_rows(f, self.ny - 1)
        # full bounce-back inside the obstacle
        inside = self.mask
        bounced = f[D2Q9.OPPOSITE][:, inside]
        f[:, inside] = bounced
        # inflow: fixed equilibrium at x = 0
        rho_in = np.ones(self.ny)
        ux_in = np.full(self.ny, self.u_in)
        f[:, :, 0] = D2Q9.equilibrium(
            rho_in[:, None], ux_in[:, None], np.zeros((self.ny, 1))
        )[:, :, 0]
        # outflow: zero-gradient at x = nx-1
        f[:, :, -1] = f[:, :, -2]


def _build_mrt_basis() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    cx, cy = D2Q9.CX.astype(float), D2Q9.CY.astype(float)
    csq = cx * cx + cy * cy
    m = np.stack(
        [
            np.ones(9),                     # density
            -4.0 + 3.0 * csq,               # energy
            4.0 - 10.5 * csq + 4.5 * csq**2,  # energy squared
            cx,                             # momentum x
            (-5.0 + 3.0 * csq) * cx,        # energy flux x
            cy,                             # momentum y
            (-5.0 + 3.0 * csq) * cy,        # energy flux y
            cx * cx - cy * cy,              # diagonal stress
            cx * cy,                        # off-diagonal stress
        ]
    )
    s = np.array([0.0, 1.4, 1.4, 0.0, 1.2, 0.0, 1.2, 1.0, 1.0])
    return m, np.linalg.inv(m), s


_MRT_M, _MRT_M_INV, _MRT_S = _build_mrt_basis()
