"""Reference numerical applications behind the benchmark models.

The polyhedral workloads (:mod:`repro.workloads`) are the *compiler's view*
of these applications; the solvers here are the runnable physics: periodic
heat equations, D2Q9/D3Q27 Lattice Boltzmann flows, and the shallow-water
(swim) scheme.
"""

from repro.apps.heat import run_heat, step_1d, step_2d, step_3d
from repro.apps.lbm_d2q9 import D2Q9, FlowPastCylinder, LidDrivenCavity, Poiseuille
from repro.apps.lbm_d3q27 import D3Q27, LidDrivenCavity3D
from repro.apps.shallow_water import ShallowWater

__all__ = [
    "D2Q9",
    "D3Q27",
    "FlowPastCylinder",
    "LidDrivenCavity",
    "LidDrivenCavity3D",
    "Poiseuille",
    "ShallowWater",
    "run_heat",
    "step_1d",
    "step_2d",
    "step_3d",
]
