"""Reference periodic heat-equation solvers (1-d/2-d/3-d), numpy-vectorized.

These are the *applications* the heat-1dp/2dp/3dp benchmarks model: explicit
Jacobi updates on periodic grids, written the way a numerical programmer
would (whole-array operations, views over copies, in-place accumulation into
a preallocated output plane — see the repository's performance notes).

The polyhedral models in :mod:`repro.workloads.periodic` use the same update
coefficients, so a model run through the compiler can be cross-checked
against these solvers point-for-point (tests do exactly that).
"""

from __future__ import annotations

import numpy as np

__all__ = ["step_1d", "step_2d", "step_3d", "run_heat"]


def step_1d(u: np.ndarray, out: np.ndarray) -> np.ndarray:
    """One periodic 3-point update: ``0.125*left + 0.75*c + 0.125*right``."""
    np.multiply(u, 0.75, out=out)
    out += 0.125 * np.roll(u, 1)
    out += 0.125 * np.roll(u, -1)
    return out


def step_2d(u: np.ndarray, out: np.ndarray) -> np.ndarray:
    """One periodic 5-point update matching the heat-2dp model."""
    np.multiply(u, 0.5, out=out)
    for axis in (0, 1):
        out += 0.125 * np.roll(u, 1, axis=axis)
        out += 0.125 * np.roll(u, -1, axis=axis)
    return out


def step_3d(u: np.ndarray, out: np.ndarray) -> np.ndarray:
    """One periodic 7-point update matching the heat-3dp model."""
    np.multiply(u, 0.4, out=out)
    for axis in (0, 1, 2):
        out += 0.1 * np.roll(u, 1, axis=axis)
        out += 0.1 * np.roll(u, -1, axis=axis)
    return out


_STEPPERS = {1: step_1d, 2: step_2d, 3: step_3d}


def run_heat(u0: np.ndarray, steps: int) -> np.ndarray:
    """Advance ``u0`` by ``steps`` periodic heat updates (double-buffered)."""
    if u0.ndim not in _STEPPERS:
        raise ValueError(f"unsupported dimensionality {u0.ndim}")
    step = _STEPPERS[u0.ndim]
    cur = np.array(u0, dtype=np.float64)
    nxt = np.empty_like(cur)
    for _ in range(steps):
        step(cur, nxt)
        cur, nxt = nxt, cur
    return cur
